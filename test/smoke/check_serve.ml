(* Streaming-ingest service smoke validator:

   [check_serve bench BENCH_serve.json] — the bench's ingest-service
   manifest conforms to colayout/bench-serve/v1: the full shards x jobs
   grid is present (every combination of the advertised shard and jobs
   counts), every grid cell reproduced the batch-kernel digests
   (digests_match on each cell plus the top-level digests_identical flag
   — the bench FATALs before writing on any divergence, so these are
   also a write-path integrity check), positive walls and throughputs
   everywhere, the bounded-memory section deterministic with caps
   respected and eviction/decay actually fired at every recorded run,
   and the embedded end-to-end serve summary verified against the batch
   kernels with sane latency percentiles (p50 <= p95 <= p99). Magnitude
   is gated on the recorded cores_available, matching the other
   checkers: on a multicore host the best pooled grid cell must not fall
   below 0.8x the serial walker in full mode; on a single-core host
   domains only add overhead, so positivity is all we ask. *)

module J = Colayout_util.Json
open Smoke_check

let get_float json ~path key =
  match Option.bind (J.member key json) J.to_float with
  | Some f -> f
  | None -> fail "%s: missing number field %S" path key

let check_bench path =
  let json = parse path in
  require_schema json ~path "colayout/bench-serve/v1";
  let mode = get_str json ~path "mode" in
  if not (get_bool json ~path "digests_identical") then
    fail "%s: digests_identical is not true — a grid cell diverged from the batch kernels"
      path;
  let batch = J.Obj (get_obj json ~path "batch") in
  List.iter
    (fun key ->
      if String.length (get_str batch ~path key) = 0 then
        fail "%s: empty batch %s" path key)
    [ "trg_digest"; "affine_digest" ];
  (* Grid: every (shards, jobs) combination, each digest-checked with
     positive timings and throughputs. *)
  let grid = get_list json ~path "grid" in
  let want_shards = [ 1; 2; 4 ] and want_jobs = [ 1; 2; 4 ] in
  let seen =
    List.map
      (fun cell ->
        let shards = get_int cell "shards" and jobs = get_int cell "jobs" in
        let label = Printf.sprintf "grid shards=%d jobs=%d" shards jobs in
        if not (get_bool cell ~path "digests_match") then
          fail "%s: %s diverged from the batch kernels" path label;
        List.iter
          (fun key ->
            if get_int cell key <= 0 then fail "%s: %s has non-positive %s" path label key)
          [ "ingest_wall_ns"; "merge_ns"; "flushes" ];
        List.iter
          (fun key ->
            if get_float cell ~path key <= 0.0 then
              fail "%s: %s has non-positive %s" path label key)
          [ "events_per_sec"; "traces_per_sec"; "edge_ops_per_sec" ];
        (shards, jobs))
      grid
  in
  List.iter
    (fun shards ->
      List.iter
        (fun jobs ->
          if not (List.mem (shards, jobs) seen) then
            fail "%s: grid has no cell for shards=%d jobs=%d" path shards jobs)
        want_jobs)
    want_shards;
  (* Bounded-memory section: the approximation must be deterministic,
     the caps must have held at flush boundaries, and the pressure knobs
     must actually have fired. *)
  let bounded = J.Obj (get_obj json ~path "bounded") in
  List.iter
    (fun key ->
      if not (get_bool bounded ~path key) then fail "%s: bounded.%s is not true" path key)
    [ "deterministic"; "caps_respected"; "evictions_fired" ];
  let trg_cap = get_int bounded "trg_cap" and wits_cap = get_int bounded "wits_cap" in
  if trg_cap <= 0 || wits_cap <= 0 then
    fail "%s: bounded section has non-positive caps (%d, %d)" path trg_cap wits_cap;
  let bounded_runs = get_list bounded ~path "runs" in
  if bounded_runs = [] then fail "%s: bounded.runs is empty" path;
  List.iter
    (fun run ->
      let jobs = get_int run "jobs" in
      let label = Printf.sprintf "bounded jobs=%d" jobs in
      if get_int run "trg_peak_shard" > trg_cap then
        fail "%s: %s trg peak %d exceeds cap %d" path label (get_int run "trg_peak_shard")
          trg_cap;
      if get_int run "wits_peak_shard" > wits_cap then
        fail "%s: %s wits peak %d exceeds cap %d" path label (get_int run "wits_peak_shard")
          wits_cap;
      if get_int run "trg_evicted" <= 0 || get_int run "wits_evicted" <= 0 then
        fail "%s: %s recorded no evictions under pressure" path label;
      if get_int run "decay_dropped" <= 0 then
        fail "%s: %s recorded no decay drops" path label)
    bounded_runs;
  (* Embedded end-to-end serve summary: verified digests, positive
     throughput, ordered latency percentiles. *)
  let serve = J.Obj (get_obj json ~path "serve") in
  require_schema serve ~path:(path ^ "#serve") "colayout/serve/v1";
  let verify = J.Obj (get_obj serve ~path:(path ^ "#serve") "verify") in
  if not (get_bool verify ~path "digests_match") then
    fail "%s: serve summary diverged from the batch kernels" path;
  let tps = get_float serve ~path "traces_per_sec" in
  if tps <= 0.0 then fail "%s: serve has non-positive traces_per_sec" path;
  let p50 = get_float serve ~path "trace_p50_ns"
  and p95 = get_float serve ~path "trace_p95_ns"
  and p99 = get_float serve ~path "trace_p99_ns" in
  if not (p50 > 0.0 && p50 <= p95 && p95 <= p99) then
    fail "%s: serve latency percentiles are not ordered (%.0f/%.0f/%.0f)" path p50 p95 p99;
  if get_list serve ~path "epochs" = [] then fail "%s: serve summary has no epoch rows" path;
  let best = get_float json ~path "best_parallel_vs_serial" in
  if best <= 0.0 then fail "%s: non-positive best_parallel_vs_serial" path;
  let cores =
    cores_gate json ~path ~enabled:(mode = "full") ~what:"best pooled ingest vs serial"
      ~floor:0.8 best
  in
  Printf.printf
    "check_serve: %s ok (%d grid cells, %d cores, best pooled %.2fx, serve %.1f traces/s)\n"
    path (List.length grid) cores best tps

let () =
  set_tool "check_serve";
  match Array.to_list Sys.argv with
  | [ _; "bench"; path ] -> check_bench path
  | _ ->
    prerr_endline "usage: check_serve bench FILE";
    exit 2
