(* Layout-evaluation engine smoke validator:

   [check_layout_eval bench BENCH_layout_eval.json] — the manifest
   conforms to colayout/bench-layout-eval/v1: positive single-thread
   timings for both the engine and the seed evaluator, positive annealing
   walls, batch runs for jobs 1, 2 and 4 whose result digests are all
   identical (the engine's determinism contract), and — following the
   cores_available gating convention of check_parallel — on a host with
   >= 2 recorded cores the engine's single-thread speedup over the seed
   path must be at least 1.0; on a single-core CI box timings are too
   noisy to gate magnitude and positivity is all we ask. The >= 5x
   tentpole claim is enforced where it is measured: the bench itself
   FATALs in full mode below 5x, so a committed full-mode manifest has
   already passed it. *)

module J = Colayout_util.Json
open Smoke_check

let get_float json ~path key =
  match Option.bind (J.member key json) J.to_float with
  | Some v -> v
  | None -> fail "%s: missing number field %S" path key

let check_bench path =
  let json = parse path in
  require_schema json ~path "colayout/bench-layout-eval/v1";
  let mode = get_str json ~path "mode" in
  if mode <> "quick" && mode <> "full" then fail "%s: unknown mode %S" path mode;
  if not (get_bool json ~path "identical_batches") then
    fail "%s: identical_batches is not true — jobs counts disagreed" path;
  let st =
    match J.member "single_thread" json with
    | Some o -> o
    | None -> fail "%s: missing object field \"single_thread\"" path
  in
  let engine_ns = get_float st ~path "engine_ns_per_eval" in
  let seed_ns = get_float st ~path "seed_ns_per_eval" in
  let speedup = get_float st ~path "speedup" in
  if engine_ns <= 0.0 || seed_ns <= 0.0 || speedup <= 0.0 then
    fail "%s: non-positive single-thread timings (%.1f / %.1f ns, %.2fx)" path engine_ns
      seed_ns speedup;
  let anneal =
    match J.member "anneal" json with
    | Some o -> o
    | None -> fail "%s: missing object field \"anneal\"" path
  in
  if get_int anneal "seed_wall_ns" <= 0 || get_int anneal "engine_wall_ns" <= 0 then
    fail "%s: non-positive annealing wall-clock" path;
  let runs =
    match get_list json ~path "batch" with
    | [] -> fail "%s: no batch runs" path
    | runs -> runs
  in
  let digests =
    List.map
      (fun run ->
        let jobs = get_int run "jobs" in
        if get_int run "wall_ns" <= 0 then
          fail "%s: batch jobs=%d has a non-positive wall_ns" path jobs;
        match Option.bind (J.member "digest" run) J.to_str with
        | Some d when String.length d > 0 -> (jobs, d)
        | _ -> fail "%s: batch jobs=%d has no digest" path jobs)
      runs
  in
  List.iter
    (fun jobs ->
      if not (List.mem_assoc jobs digests) then fail "%s: no batch run for jobs=%d" path jobs)
    [ 1; 2; 4 ];
  let first = snd (List.hd digests) in
  List.iter
    (fun (jobs, d) ->
      if d <> first then fail "%s: batch jobs=%d digest differs from jobs=%d" path jobs
          (fst (List.hd digests)))
    digests;
  let cores = cores_gate json ~path ~what:"engine speedup" ~floor:1.0 speedup in
  Printf.printf
    "check_layout_eval: %s ok (mode %s, %d cores, single-thread %.2fx, %d batch runs)\n" path
    mode cores speedup (List.length runs)

let () =
  set_tool "check_layout_eval";
  match Array.to_list Sys.argv with
  | [ _; "bench"; path ] -> check_bench path
  | _ ->
    prerr_endline "usage: check_layout_eval bench FILE";
    exit 2
