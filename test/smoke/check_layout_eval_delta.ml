(* Delta-evaluation smoke validator:

   [check_layout_eval_delta bench BENCH_layout_eval_delta.json] — the
   manifest conforms to colayout/bench-layout-eval-delta/v1 and, more to
   the point, is not too good to be true:

   - every scenario replayed its move sequence down both paths and the
     per-move ratio digests agreed ([digests_equal]) — a fast-but-wrong
     delta path must not publish;
   - speedups are monotone non-increasing in the nominal dirty fraction
     (modulo timing slack): a delta path that gets FASTER as more sets go
     dirty is re-simulating less than it must;
   - the 100 %-dirty scenario shows no real speedup (<= 1.5x): replaying
     the whole trace cannot beat the full recompute by more than
     bookkeeping noise, so a large number here means the "full replay" is
     skipping work;
   - walls are positive, resync/full-walk counters non-negative, and the
     anneal comparison ran to byte-identical results.

   Following the cores_available gating convention of check_parallel,
   magnitude gates (lowest-dirty scenario and anneal speedup >= 1.0) only
   apply with >= 2 recorded cores; the >= 5x tentpole number itself is
   enforced where it is measured — the bench FATALs in full mode below
   3x, so a committed full-mode manifest has already passed. *)

module J = Colayout_util.Json
open Smoke_check

let get_float json ~path key =
  match Option.bind (J.member key json) J.to_float with
  | Some v -> v
  | None -> fail "%s: missing number field %S" path key

let check_bench path =
  let json = parse path in
  require_schema json ~path "colayout/bench-layout-eval-delta/v1";
  let mode = get_str json ~path "mode" in
  if mode <> "quick" && mode <> "full" then fail "%s: unknown mode %S" path mode;
  let scenarios =
    match get_list json ~path "scenarios" with
    | [] -> fail "%s: no scenarios" path
    | l -> l
  in
  let rows =
    List.map
      (fun sc ->
        let label = get_str sc ~path "label" in
        let nominal = get_int sc "nominal_dirty_pct" in
        let speedup = get_float sc ~path "speedup" in
        if not (get_bool sc ~path "digests_equal") then
          fail "%s: scenario %s: delta ratios diverged from the full recompute" path label;
        if String.length (get_str sc ~path "digest") = 0 then
          fail "%s: scenario %s: empty digest" path label;
        if get_int sc "full_wall_ns" <= 0 || get_int sc "delta_wall_ns" <= 0 then
          fail "%s: scenario %s: non-positive wall-clock" path label;
        if speedup <= 0.0 then fail "%s: scenario %s: non-positive speedup" path label;
        if get_int sc "resyncs" < 0 || get_int sc "full_walks" < 0 then
          fail "%s: scenario %s: negative work counters" path label;
        let dirty = get_float sc ~path "measured_dirty_pct" in
        let replayed = get_float sc ~path "replayed_events_pct" in
        if dirty < 0.0 || dirty > 100.0 || replayed < 0.0 || replayed > 100.0 then
          fail "%s: scenario %s: dirty/replayed fractions out of [0, 100]" path label;
        (label, nominal, speedup))
      scenarios
  in
  (* Impossible-speedup guard: at 100 % dirty the delta path replays the
     whole trace and must not "win". *)
  (match List.find_opt (fun (_, nominal, _) -> nominal >= 100) rows with
  | None -> fail "%s: no 100%%-dirty scenario" path
  | Some (label, _, speedup) ->
    if speedup > 1.5 then
      fail
        "%s: scenario %s claims %.2fx at 100%% dirty — a full replay cannot beat a full \
         recompute"
        path label speedup);
  (* Monotonicity: less-dirty scenarios must not be slower than
     more-dirty ones. Quick-mode timings are short and noisy, so the
     allowed slack widens. *)
  let slack = if mode = "quick" then 1.35 else 1.10 in
  let sorted = List.sort (fun (_, a, _) (_, b, _) -> compare a b) rows in
  let rec check_monotone = function
    | (la, na, sa) :: ((lb, nb, sb) :: _ as rest) ->
      if sb > sa *. slack then
        fail
          "%s: speedup is not monotone non-increasing in dirty-%%: %s (%d%%) %.2fx < %s \
           (%d%%) %.2fx"
          path la na sa lb nb sb;
      check_monotone rest
    | _ -> ()
  in
  check_monotone sorted;
  let anneal =
    match J.member "anneal" json with
    | Some o -> o
    | None -> fail "%s: missing object field \"anneal\"" path
  in
  if not (get_bool anneal ~path "identical_results") then
    fail "%s: anneal results differ across evaluation modes" path;
  if get_int anneal "steps" <= 0 then fail "%s: anneal ran no steps" path;
  if get_int anneal "full_wall_ns" <= 0 || get_int anneal "delta_wall_ns" <= 0 then
    fail "%s: non-positive anneal wall-clock" path;
  let anneal_speedup = get_float anneal ~path "speedup" in
  let cores = get_int json "cores_available" in
  (match sorted with
  | (label, nominal, speedup) :: _ when cores >= 2 && speedup < 1.0 ->
    fail "%s: %d cores available but %s (%d%% dirty) speedup is %.2fx (< 1.0)" path cores
      label nominal speedup
  | _ -> ());
  if cores >= 2 && anneal_speedup < 1.0 then
    fail "%s: %d cores available but anneal speedup is %.2fx (< 1.0)" path cores
      anneal_speedup;
  Printf.printf
    "check_layout_eval_delta: %s ok (mode %s, %d cores, %d scenarios, anneal %.2fx)\n" path
    mode cores (List.length rows) anneal_speedup

let () =
  set_tool "check_layout_eval_delta";
  match Array.to_list Sys.argv with
  | [ _; "bench"; path ] -> check_bench path
  | _ ->
    prerr_endline "usage: check_layout_eval_delta bench FILE";
    exit 2
