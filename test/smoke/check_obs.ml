(* CLI-smoke validator: reads the metrics snapshot and Chrome trace that
   `repro run ... --metrics --trace` wrote and checks the acceptance
   properties — both parse, the trace has one span per experiment and per
   optimizer stage with non-negative durations, and the metrics carry
   nonzero Ctx memo hit/miss counters and cache access/miss totals. *)

module J = Colayout_util.Json
open Smoke_check

let check_metrics path =
  let json = parse path in
  require_schema json ~path "colayout/metrics/v1";
  let counters = get_obj json ~path "counters" in
  let value name =
    match List.assoc_opt name counters with Some (J.Int v) -> v | _ -> 0
  in
  let sum_matching pred =
    List.fold_left
      (fun acc (k, v) -> match v with J.Int n when pred k -> acc + n | _ -> acc)
      0 counters
  in
  let memo_hits =
    sum_matching (fun k -> has_prefix k "ctx.memo." && Filename.check_suffix k ".hits")
  in
  let memo_misses =
    sum_matching (fun k -> has_prefix k "ctx.memo." && Filename.check_suffix k ".misses")
  in
  if memo_hits <= 0 then fail "%s: no Ctx memo hits recorded" path;
  if memo_misses <= 0 then fail "%s: no Ctx memo misses recorded" path;
  if value "cache.accesses" <= 0 then fail "%s: cache.accesses is zero" path;
  if value "cache.misses" <= 0 then fail "%s: cache.misses is zero" path;
  if value "interp.blocks" <= 0 then fail "%s: interp.blocks is zero" path;
  Printf.printf "check_obs: %s ok (%d memo hits, %d misses, %d cache accesses)\n" path
    memo_hits memo_misses (value "cache.accesses")

let check_trace path ~experiments =
  let json = parse path in
  let events = get_list json ~path "traceEvents" in
  if events = [] then fail "%s: empty trace" path;
  let names =
    List.map
      (fun ev ->
        let name = get_str ev ~path "name" in
        let dur = get_int ev "dur" and ts = get_int ev "ts" in
        if dur < 0 then fail "%s: span %s has negative duration %d" path name dur;
        if ts < 0 then fail "%s: span %s has negative timestamp %d" path name ts;
        name)
      events
  in
  let has prefix = List.exists (fun n -> has_prefix n prefix) names in
  List.iter
    (fun id -> if not (List.mem ("exp:" ^ id) names) then fail "%s: no span for experiment %s" path id)
    experiments;
  if not (has "analyze:") then fail "%s: no optimizer analyze span" path;
  if not (has "layout:") then fail "%s: no optimizer layout span" path;
  Printf.printf "check_obs: %s ok (%d spans)\n" path (List.length events)

let () =
  set_tool "check_obs";
  match Array.to_list Sys.argv with
  | _ :: metrics :: trace :: experiments ->
    check_metrics metrics;
    check_trace trace ~experiments
  | _ ->
    prerr_endline "usage: check_obs METRICS.json TRACE.json [EXPERIMENT_ID...]";
    exit 2
