(* Observability smoke validator, four modes:

   [check_obs bench BENCH_obs.json] — the interference-observatory
   manifest conforms to colayout/bench-obs/v1: every co-run cell carries
   baseline and optimized interference sections whose matrices conserve
   (eviction matrix sums to the eviction total; per thread, first-touch
   misses plus the miss-provenance row reproduce the miss total; the
   derived suffered/inflicted counts and defensiveness/politeness scores
   are consistent with the matrices), the transparency and jobs-invariance
   bits are set, and the headline gate holds — at least two cells where
   the optimized layout strictly improves BOTH scores.

   [check_obs stream FILE.jsonl] — a colayout/obs/v1 snapshot stream (from
   `repro serve --obs` or the obs bench): every line parses, sequence
   numbers are dense, timestamps are monotonic, and every embedded
   interference section passes the same conservation checks.

   [check_obs serve METRICS.json SERVE.json] — flush-on-exit coverage for
   `repro serve --metrics`: when the run ends mid-epoch the final snapshot
   must still account for every ingested trace (counters match the serve
   summary's trace total) and the summary's epoch table must end with the
   flushed partial epoch row.

   [check_obs METRICS.json TRACE.json [EXPERIMENT_ID...]] — the original
   CLI-smoke mode: the metrics snapshot and Chrome trace that
   `repro run ... --metrics --trace` wrote both parse, the trace has one
   span per experiment and per optimizer stage with non-negative
   durations, and the metrics carry nonzero Ctx memo hit/miss counters
   and cache access/miss totals. *)

module J = Colayout_util.Json
open Smoke_check

let get_float json ~path key =
  match Option.bind (J.member key json) J.to_float with
  | Some v -> v
  | None -> fail "%s: missing number field %S" path key

let int_array json ~path ~label key =
  match Option.bind (J.member key json) J.to_list with
  | Some l ->
    Array.of_list
      (List.map
         (fun v ->
           match J.to_int v with
           | Some n -> n
           | None -> fail "%s: %s.%s holds a non-integer" path label key)
         l)
  | None -> fail "%s: %s missing array %S" path label key

let float_array json ~path ~label key =
  match Option.bind (J.member key json) J.to_list with
  | Some l ->
    Array.of_list
      (List.map
         (fun v ->
           match J.to_float v with
           | Some f -> f
           | None -> fail "%s: %s.%s holds a non-number" path label key)
         l)
  | None -> fail "%s: %s missing array %S" path label key

let int_matrix json ~path ~label key =
  match Option.bind (J.member key json) J.to_list with
  | Some rows ->
    Array.of_list
      (List.map
         (fun row ->
           match J.to_list row with
           | Some cells ->
             Array.of_list
               (List.map
                  (fun v ->
                    match J.to_int v with
                    | Some n -> n
                    | None -> fail "%s: %s.%s holds a non-integer" path label key)
                  cells)
           | None -> fail "%s: %s.%s holds a non-array row" path label key)
         rows)
  | None -> fail "%s: %s missing matrix %S" path label key

(* The conservation laws of one interference section — the same checks
   Profile.interference_json enforces at production time, re-verified
   from the serialized artifact alone. *)
let check_interference json ~path ~label =
  let threads = get_int json "threads" in
  if threads < 2 then fail "%s: %s has %d threads (co-run needs >= 2)" path label threads;
  let accesses = int_array json ~path ~label "accesses"
  and misses = int_array json ~path ~label "misses"
  and first = int_array json ~path ~label "first_misses"
  and suffered = int_array json ~path ~label "suffered"
  and inflicted = int_array json ~path ~label "inflicted"
  and def = float_array json ~path ~label "defensiveness"
  and pol = float_array json ~path ~label "politeness"
  and ev = int_matrix json ~path ~label "ev_matrix"
  and ms = int_matrix json ~path ~label "miss_matrix" in
  let evictions = get_int json "evictions" in
  List.iter
    (fun (key, arr) ->
      if Array.length arr <> threads then
        fail "%s: %s.%s has %d entries for %d threads" path label key (Array.length arr)
          threads)
    [
      ("accesses", accesses); ("misses", misses); ("first_misses", first);
      ("suffered", suffered); ("inflicted", inflicted);
    ];
  Array.iteri
    (fun i m ->
      if Array.length m <> threads || Array.exists (fun r -> Array.length r <> threads) m
      then
        fail "%s: %s %s is not %dx%d" path label
          (if i = 0 then "ev_matrix" else "miss_matrix")
          threads threads)
    [| ev; ms |];
  let sum2 m = Array.fold_left (fun a row -> Array.fold_left ( + ) a row) 0 m in
  if sum2 ev <> evictions then
    fail "%s: %s eviction matrix sums to %d, total says %d" path label (sum2 ev) evictions;
  for t = 0 to threads - 1 do
    let row = Array.fold_left ( + ) first.(t) ms.(t) in
    if row <> misses.(t) then
      fail "%s: %s thread %d first+row sums to %d, misses say %d" path label t row
        misses.(t);
    let suff = ref 0 and infl = ref 0 in
    for o = 0 to threads - 1 do
      if o <> t then begin
        suff := !suff + ms.(t).(o);
        infl := !infl + ms.(o).(t)
      end
    done;
    if !suff <> suffered.(t) then
      fail "%s: %s thread %d suffered %d but matrix says %d" path label t suffered.(t)
        !suff;
    if !infl <> inflicted.(t) then
      fail "%s: %s thread %d inflicted %d but matrix says %d" path label t inflicted.(t)
        !infl;
    List.iter
      (fun (key, v) ->
        if not (v >= 0.0 && v <= 1.0) then
          fail "%s: %s thread %d %s %.4f outside [0,1]" path label t key v)
      [ ("defensiveness", def.(t)); ("politeness", pol.(t)) ];
    if accesses.(t) > 0 then begin
      let want = 1.0 -. (float_of_int !suff /. float_of_int accesses.(t)) in
      if Float.abs (def.(t) -. want) > 1e-9 then
        fail "%s: %s thread %d defensiveness %.6f != 1 - suffered/accesses = %.6f" path
          label t def.(t) want
    end
  done

let side cell ~path ~label name =
  match J.member name cell with
  | Some (J.Obj _ as s) ->
    let il = label ^ "." ^ name in
    check_interference
      (match J.member "interference" s with
      | Some i -> i
      | None -> fail "%s: %s has no interference section" path il)
      ~path ~label:il;
    (get_float s ~path "defensiveness", get_float s ~path "politeness")
  | _ -> fail "%s: %s has no %s section" path label name

let check_bench path =
  let json = parse path in
  require_schema json ~path "colayout/bench-obs/v1";
  let cells = get_list json ~path "cells" in
  if List.length cells < 2 then
    fail "%s: only %d co-run cells (need >= 2)" path (List.length cells);
  let improved =
    List.filter
      (fun cell ->
        let label =
          Printf.sprintf "cell %s|%s" (get_str cell ~path "self") (get_str cell ~path "peer")
        in
        let bdef, bpol = side cell ~path ~label "baseline" in
        let odef, opol = side cell ~path ~label "optimized" in
        let improved = odef > bdef && opol > bpol in
        if improved <> get_bool cell ~path "improved_both" then
          fail "%s: %s improved_both flag disagrees with the scores" path label;
        improved)
      cells
  in
  if List.length improved <> get_int json "cells_improved_both" then
    fail "%s: cells_improved_both says %d, recount finds %d" path
      (get_int json "cells_improved_both") (List.length improved);
  if List.length improved < 2 then
    fail "%s: optimized layout beat baseline on both scores in only %d/%d cells (need >= 2)"
      path (List.length improved) (List.length cells);
  List.iter
    (fun key ->
      if not (get_bool json ~path key) then fail "%s: %s is not true" path key)
    [ "sink_transparent"; "jobs_invariant" ];
  if get_int json "obs_recorded" <> List.length cells then
    fail "%s: obs_recorded %d != %d cells" path (get_int json "obs_recorded")
      (List.length cells);
  let runtime = J.Obj (get_obj json ~path "runtime") in
  if get_int runtime "wall_ns" <= 0 then fail "%s: runtime.wall_ns is not positive" path;
  ignore (get_int runtime "cores_available");
  Printf.printf "check_obs: %s ok (%d cells, %d improved both scores, conservation held)\n"
    path (List.length cells) (List.length improved)

let check_stream path =
  let lines =
    String.split_on_char '\n' (read_file path) |> List.filter (fun l -> l <> "")
  in
  if lines = [] then fail "%s: empty snapshot stream" path;
  let first_seq = ref None and last_ts = ref Int64.min_int and checked = ref 0 in
  List.iteri
    (fun i line ->
      let json =
        match J.parse line with
        | v -> v
        | exception J.Parse_error (pos, msg) ->
          fail "%s: line %d does not parse: %s at byte %d" path (i + 1) msg pos
      in
      require_schema json ~path:(Printf.sprintf "%s:%d" path (i + 1)) "colayout/obs/v1";
      let label = Printf.sprintf "line %d" (i + 1) in
      let seq = get_int json "seq" in
      (match !first_seq with
      | None -> first_seq := Some (seq - i)
      | Some base ->
        if seq <> base + i then
          fail "%s: %s seq %d breaks density (expected %d)" path label seq (base + i));
      let ts =
        match Option.bind (J.member "ts_ns" json) J.to_int with
        | Some t -> Int64.of_int t
        | None -> fail "%s: %s has no ts_ns" path label
      in
      if ts < !last_ts then fail "%s: %s timestamp went backwards" path label;
      last_ts := ts;
      if get_str json ~path "label" = "" then fail "%s: %s has an empty label" path label;
      (* Conservation on every embedded interference section, whichever
         producer wrote the stream (serve epochs or bench cells). *)
      (match J.member "interference" json with
      | Some i ->
        check_interference i ~path ~label;
        incr checked
      | None -> ());
      List.iter
        (fun name ->
          match J.member name json with
          | Some s ->
            (* The member is either the interference section itself (the
               obs bench's cell snapshots) or a wrapper carrying one. *)
            let i =
              if J.member "ev_matrix" s <> None then Some s
              else J.member "interference" s
            in
            Option.iter
              (fun i ->
                check_interference i ~path ~label:(label ^ "." ^ name);
                incr checked)
              i
          | None -> ())
        [ "baseline"; "optimized" ])
    lines;
  if !checked = 0 then fail "%s: stream carried no interference sections" path;
  Printf.printf "check_obs: %s ok (%d snapshots, %d interference sections conserve)\n" path
    (List.length lines) !checked

(* Flush-on-exit: `repro serve --users 5 --epoch 2` ends mid-epoch, and the
   --metrics snapshot plus the summary's epoch table must both reflect the
   flushed partial epoch — no trace ingested after the last full epoch
   boundary may go unaccounted. *)
let check_serve metrics_path serve_path =
  let mjson = parse metrics_path in
  require_schema mjson ~path:metrics_path "colayout/metrics/v1";
  let counters = get_obj mjson ~path:metrics_path "counters" in
  let counter name =
    match List.assoc_opt name counters with
    | Some (J.Int v) -> v
    | _ -> fail "%s: missing counter %S" metrics_path name
  in
  let users = counter "serve.users" in
  if users <= 0 then fail "%s: serve.users is not positive" metrics_path;
  let ingested = counter "ingest.traces" in
  let sjson = parse serve_path in
  require_schema sjson ~path:serve_path "colayout/serve/v1";
  let config = J.Obj (get_obj sjson ~path:serve_path "config") in
  let stats = J.Obj (get_obj sjson ~path:serve_path "stats") in
  if get_int config "users" <> users then
    fail "%s: config.users %d disagrees with the metrics snapshot's %d" serve_path
      (get_int config "users") users;
  let traces = get_int stats "traces" in
  if traces <> users then
    fail "%s: %d users but only %d traces ingested" serve_path users traces;
  if ingested <> traces then
    fail "%s: metrics snapshot counted %d traces, summary says %d (snapshot not merged?)"
      metrics_path ingested traces;
  let epoch_traces = get_int config "epoch_traces" in
  if epoch_traces <= 0 || users mod epoch_traces = 0 then
    fail "%s: users %d is a multiple of epoch_traces %d — this mode exists to exercise a \
         mid-epoch exit"
      serve_path users epoch_traces;
  let epochs = get_list sjson ~path:serve_path "epochs" in
  (match List.rev epochs with
  | [] -> fail "%s: no epoch rows (need a flushed partial epoch)" serve_path
  | last :: earlier ->
    if not (get_bool last ~path:serve_path "partial") then
      fail "%s: run ended mid-epoch but the last epoch row is not partial" serve_path;
    if get_int last "at_trace" <> users then
      fail "%s: partial epoch flushed at trace %d, expected %d" serve_path
        (get_int last "at_trace") users;
    List.iter
      (fun row ->
        if get_bool row ~path:serve_path "partial" then
          fail "%s: non-final epoch row %d is marked partial" serve_path (get_int row "epoch"))
      earlier);
  Printf.printf
    "check_obs: %s + %s ok (%d traces accounted, partial epoch flushed at exit)\n"
    metrics_path serve_path traces

let check_metrics path =
  let json = parse path in
  require_schema json ~path "colayout/metrics/v1";
  let counters = get_obj json ~path "counters" in
  let value name =
    match List.assoc_opt name counters with Some (J.Int v) -> v | _ -> 0
  in
  let sum_matching pred =
    List.fold_left
      (fun acc (k, v) -> match v with J.Int n when pred k -> acc + n | _ -> acc)
      0 counters
  in
  let memo_hits =
    sum_matching (fun k -> has_prefix k "ctx.memo." && Filename.check_suffix k ".hits")
  in
  let memo_misses =
    sum_matching (fun k -> has_prefix k "ctx.memo." && Filename.check_suffix k ".misses")
  in
  if memo_hits <= 0 then fail "%s: no Ctx memo hits recorded" path;
  if memo_misses <= 0 then fail "%s: no Ctx memo misses recorded" path;
  if value "cache.accesses" <= 0 then fail "%s: cache.accesses is zero" path;
  if value "cache.misses" <= 0 then fail "%s: cache.misses is zero" path;
  if value "interp.blocks" <= 0 then fail "%s: interp.blocks is zero" path;
  Printf.printf "check_obs: %s ok (%d memo hits, %d misses, %d cache accesses)\n" path
    memo_hits memo_misses (value "cache.accesses")

let check_trace path ~experiments =
  let json = parse path in
  let events = get_list json ~path "traceEvents" in
  if events = [] then fail "%s: empty trace" path;
  let names =
    List.map
      (fun ev ->
        let name = get_str ev ~path "name" in
        let dur = get_int ev "dur" and ts = get_int ev "ts" in
        if dur < 0 then fail "%s: span %s has negative duration %d" path name dur;
        if ts < 0 then fail "%s: span %s has negative timestamp %d" path name ts;
        name)
      events
  in
  let has prefix = List.exists (fun n -> has_prefix n prefix) names in
  List.iter
    (fun id -> if not (List.mem ("exp:" ^ id) names) then fail "%s: no span for experiment %s" path id)
    experiments;
  if not (has "analyze:") then fail "%s: no optimizer analyze span" path;
  if not (has "layout:") then fail "%s: no optimizer layout span" path;
  Printf.printf "check_obs: %s ok (%d spans)\n" path (List.length events)

let () =
  set_tool "check_obs";
  match Array.to_list Sys.argv with
  | [ _; "bench"; path ] -> check_bench path
  | [ _; "stream"; path ] -> check_stream path
  | [ _; "serve"; metrics; serve ] -> check_serve metrics serve
  | _ :: metrics :: trace :: experiments
    when metrics <> "bench" && metrics <> "stream" && metrics <> "serve" ->
    check_metrics metrics;
    check_trace trace ~experiments
  | _ ->
    prerr_endline
      "usage: check_obs bench FILE | check_obs stream FILE.jsonl | check_obs serve \
       METRICS.json SERVE.json | check_obs METRICS.json TRACE.json [EXPERIMENT_ID...]";
    exit 2
