(* Shared validation vocabulary for the smoke checkers (check_obs,
   check_parallel, check_profile): fail-with-prefix, file reading, JSON
   parsing and schema/field accessors that exit 1 with a pointed message
   instead of raising. Each checker names itself via [set_tool] first. *)

module J = Colayout_util.Json

let tool = ref "smoke_check"

let set_tool name = tool := name

let fail fmt = Printf.ksprintf (fun s -> prerr_endline (!tool ^ ": " ^ s); exit 1) fmt

let read_file path =
  match open_in_bin path with
  | ic ->
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    text
  | exception Sys_error e -> fail "cannot read %s: %s" path e

let parse path =
  match J.parse (read_file path) with
  | v -> v
  | exception J.Parse_error (pos, msg) -> fail "%s does not parse: %s at byte %d" path msg pos

let require_schema json ~path expected =
  match Option.bind (J.member "schema" json) J.to_str with
  | Some s when s = expected -> ()
  | Some s -> fail "%s: schema %S, expected %S" path s expected
  | None -> fail "%s: missing schema (expected %S)" path expected

let get_int json key =
  match Option.bind (J.member key json) J.to_int with
  | Some v -> v
  | None -> fail "missing integer field %S" key

let get_list json ~path key =
  match Option.bind (J.member key json) J.to_list with
  | Some l -> l
  | None -> fail "%s: missing array field %S" path key

let get_obj json ~path key =
  match J.member key json with
  | Some (J.Obj kvs) -> kvs
  | _ -> fail "%s: missing object field %S" path key

let get_str json ~path key =
  match Option.bind (J.member key json) J.to_str with
  | Some s -> s
  | None -> fail "%s: missing string field %S" path key

let get_bool json ~path key =
  match Option.bind (J.member key json) J.to_bool with
  | Some b -> b
  | None -> fail "%s: missing boolean field %S" path key

let has_prefix s prefix =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

(* The shared magnitude-gating convention: every BENCH manifest records the
   host width it was produced on as "cores_available", and speedup-like
   assertions only bite on a host with >= 2 recorded cores (a one-core
   container can't demonstrate parallel gain, only correctness). [enabled]
   lets callers add further conditions (e.g. full mode only) without
   duplicating the cores test; returns the recorded width for the
   checker's summary line. *)
let cores_gate json ~path ?(enabled = true) ~what ~floor value =
  let cores = get_int json "cores_available" in
  if cores >= 2 && enabled && value < floor then
    fail "%s: %d cores available but %s is %.2fx (< %.2f)" path cores what value floor;
  cores
