(* Parallel multi-walker ingest smoke validator:

   [check_ingest_par bench BENCH_ingest_par.json] — the bench's
   multi-walker manifest conforms to colayout/bench-ingest-par/v1: the
   full walkers x shards x jobs grid is present (every combination of
   the advertised lists), every grid cell carries the batch-kernel
   digests verbatim (re-verified here from the artifact alone — each
   row's trg/affine digest must equal the batch section's, so a stale
   digests_match flag cannot slip through), positive walls and
   throughputs everywhere, the bounded-memory section per-walker-count
   deterministic with caps respected at every recorded run, and the
   per-walker latency histograms covering exactly the ingested traces.
   Magnitude is gated on the recorded cores_available via the shared
   convention: on a >= 2-core host in full mode the machine-width
   walker cell must be at least 1.5x the serial walker; a one-core
   container only proves correctness, so positivity is all we ask. *)

module J = Colayout_util.Json
open Smoke_check

let get_float json ~path key =
  match Option.bind (J.member key json) J.to_float with
  | Some f -> f
  | None -> fail "%s: missing number field %S" path key

let get_int_list json ~path key =
  List.map
    (fun v ->
      match J.to_int v with
      | Some i -> i
      | None -> fail "%s: non-integer element in %S" path key)
    (get_list json ~path key)

let check_bench path =
  let json = parse path in
  require_schema json ~path "colayout/bench-ingest-par/v1";
  let mode = get_str json ~path "mode" in
  if not (get_bool json ~path "digests_identical") then
    fail "%s: digests_identical is not true — a grid cell diverged from the batch kernels"
      path;
  let params = J.Obj (get_obj json ~path "params") in
  let users = get_int params "users" in
  let walkers_list = get_int_list params ~path "walkers_list" in
  let shards_list = get_int_list params ~path "shards_list" in
  let jobs_list = get_int_list params ~path "jobs_list" in
  if walkers_list = [] || shards_list = [] || jobs_list = [] then
    fail "%s: empty params grid lists" path;
  let batch = J.Obj (get_obj json ~path "batch") in
  let batch_trg = get_str batch ~path "trg_digest"
  and batch_aff = get_str batch ~path "affine_digest" in
  if String.length batch_trg = 0 || String.length batch_aff = 0 then
    fail "%s: empty batch digests" path;
  (* Grid: every (walkers, shards, jobs) combination, each cell's
     digests re-checked against the batch section from the artifact
     alone, with positive timings and throughputs. *)
  let grid = get_list json ~path "grid" in
  let seen =
    List.map
      (fun cell ->
        let walkers = get_int cell "walkers"
        and shards = get_int cell "shards"
        and jobs = get_int cell "jobs" in
        let label = Printf.sprintf "grid walkers=%d shards=%d jobs=%d" walkers shards jobs in
        if not (get_bool cell ~path "digests_match") then
          fail "%s: %s claims digest divergence" path label;
        if get_str cell ~path "trg_digest" <> batch_trg then
          fail "%s: %s trg digest differs from the batch kernel" path label;
        if get_str cell ~path "affine_digest" <> batch_aff then
          fail "%s: %s affine digest differs from the batch kernel" path label;
        List.iter
          (fun key ->
            if get_int cell key <= 0 then fail "%s: %s has non-positive %s" path label key)
          [ "ingest_wall_ns"; "merge_ns"; "flushes" ];
        (* Staged dispatch only exists on the multi-walker path; the
           single-walker ingest stays fully streaming and records none. *)
        if walkers > 1 && get_int cell "dispatches" <= 0 then
          fail "%s: %s has non-positive dispatches" path label;
        List.iter
          (fun key ->
            if get_float cell ~path key <= 0.0 then
              fail "%s: %s has non-positive %s" path label key)
          [ "events_per_sec"; "traces_per_sec"; "edge_ops_per_sec" ];
        (walkers, shards, jobs))
      grid
  in
  List.iter
    (fun walkers ->
      List.iter
        (fun shards ->
          List.iter
            (fun jobs ->
              if not (List.mem (walkers, shards, jobs) seen) then
                fail "%s: grid has no cell for walkers=%d shards=%d jobs=%d" path walkers
                  shards jobs)
            jobs_list)
        shards_list)
    walkers_list;
  if get_int json "serial_ingest_ns" <= 0 then
    fail "%s: non-positive serial_ingest_ns" path;
  (* Bounded-memory section: per-walker-count determinism with caps
     held at every recorded run. *)
  let bounded = J.Obj (get_obj json ~path "bounded") in
  List.iter
    (fun key ->
      if not (get_bool bounded ~path key) then fail "%s: bounded.%s is not true" path key)
    [ "deterministic"; "caps_respected" ];
  let trg_cap = get_int bounded "trg_cap" and wits_cap = get_int bounded "wits_cap" in
  if trg_cap <= 0 || wits_cap <= 0 then
    fail "%s: bounded section has non-positive caps (%d, %d)" path trg_cap wits_cap;
  let bounded_runs = get_list bounded ~path "runs" in
  if bounded_runs = [] then fail "%s: bounded.runs is empty" path;
  List.iter
    (fun run ->
      let walkers = get_int run "walkers" in
      let label = Printf.sprintf "bounded walkers=%d" walkers in
      if get_int run "trg_peak_shard" > trg_cap then
        fail "%s: %s trg peak %d exceeds cap %d" path label (get_int run "trg_peak_shard")
          trg_cap;
      if get_int run "wits_peak_shard" > wits_cap then
        fail "%s: %s wits peak %d exceeds cap %d" path label (get_int run "wits_peak_shard")
          wits_cap;
      List.iter
        (fun key ->
          if String.length (get_str run ~path key) = 0 then
            fail "%s: %s has an empty %s" path label key)
        [ "trg_digest"; "affine_digest" ])
    bounded_runs;
  (* Per-walker latency histograms: the dispatch fold must account for
     every ingested trace exactly once across the walker registries. *)
  let hist = J.Obj (get_obj json ~path "walker_hist") in
  let hist_total = get_int hist "total_observations" in
  if hist_total <> users then
    fail "%s: walker_hist covers %d traces, expected %d" path hist_total users;
  let per_walker = get_list hist ~path "per_walker" in
  if List.length per_walker <> get_int hist "walkers" then
    fail "%s: walker_hist.per_walker has %d rows for %d walkers" path
      (List.length per_walker) (get_int hist "walkers");
  let obs_sum = List.fold_left (fun a row -> a + get_int row "observations") 0 per_walker in
  if obs_sum <> hist_total then
    fail "%s: per-walker observations sum to %d, total says %d" path obs_sum hist_total;
  let gate = J.Obj (get_obj json ~path "gate") in
  let speedup = get_float gate ~path "speedup_vs_serial" in
  if speedup <= 0.0 then fail "%s: non-positive gate speedup" path;
  let cores =
    cores_gate json ~path ~enabled:(mode = "full")
      ~what:"machine-width walker ingest vs serial" ~floor:1.5 speedup
  in
  Printf.printf
    "check_ingest_par: %s ok (%d grid cells, %d cores, gate walkers=%d %.2fx, %d bounded \
     runs)\n"
    path (List.length grid) cores (get_int gate "walkers") speedup
    (List.length bounded_runs)

let () =
  set_tool "check_ingest_par";
  match Array.to_list Sys.argv with
  | [ _; "bench"; path ] -> check_bench path
  | _ ->
    prerr_endline "usage: check_ingest_par bench FILE";
    exit 2
