(* Cache-profile smoke validator, two modes:

   [check_profile bench BENCH_profile.json] — the bench's profile manifest
   conforms to colayout/bench-profile/v1: per workload, a baseline and an
   optimized classification whose cold + capacity + conflict splits sum
   exactly to their miss totals, a conflict_drop consistent with the two,
   and at least one workload with a strict conflict-miss reduction — the
   paper's core claim, checked on every CI run.

   [check_profile artifact PROFILE.json [DECISIONS.jsonl]] — a
   `repro profile` artifact conforms to colayout/profile/v1: every layout's
   classification sums to its miss total, its per-set histogram columns sum
   to the totals, top_conflict_blocks is present, a delta section compares
   each non-baseline layout, and the decision summary is non-empty. With
   the JSONL path, the decision stream parses line by line, carries the
   colayout/decisions/v1 tag, and its length equals the summary total. *)

module J = Colayout_util.Json
open Smoke_check

let check_classification ~path ~label totals =
  let miss = get_int totals "misses" in
  let cold = get_int totals "cold" in
  let cap = get_int totals "capacity" in
  let conf = get_int totals "conflict" in
  if cold < 0 || cap < 0 || conf < 0 then
    fail "%s: %s has a negative classification count" path label;
  if cold + cap + conf <> miss then
    fail "%s: %s classification %d + %d + %d does not sum to %d misses" path label cold cap
      conf miss;
  if get_int totals "accesses" < miss then fail "%s: %s has more misses than accesses" path label

let check_bench path =
  let json = parse path in
  require_schema json ~path "colayout/bench-profile/v1";
  let workloads =
    match get_list json ~path "workloads" with
    | [] -> fail "%s: no workloads" path
    | ws -> ws
  in
  let drops =
    List.map
      (fun w ->
        let prog = get_str w ~path "program" in
        let base = J.Obj (get_obj w ~path "baseline") in
        let opt = J.Obj (get_obj w ~path "optimized") in
        check_classification ~path ~label:(prog ^ " baseline") base;
        check_classification ~path ~label:(prog ^ " optimized") opt;
        let drop = get_int w "conflict_drop" in
        if drop <> get_int base "conflict" - get_int opt "conflict" then
          fail "%s: %s conflict_drop is inconsistent with the classifications" path prog;
        drop)
      workloads
  in
  if not (get_bool json ~path "any_conflict_drop") then
    fail "%s: any_conflict_drop is not true" path;
  if not (List.exists (fun d -> d > 0) drops) then
    fail "%s: no workload shows a conflict-miss reduction" path;
  Printf.printf "check_profile: %s ok (%d workloads, best conflict drop %d)\n" path
    (List.length workloads)
    (List.fold_left max 0 drops)

let check_layout ~path layout =
  let label = get_str layout ~path "label" in
  let totals = J.Obj (get_obj layout ~path "totals") in
  check_classification ~path ~label totals;
  ignore (get_list layout ~path "top_conflict_blocks");
  let hist = J.Obj (get_obj layout ~path "set_histogram") in
  let sum key =
    List.fold_left
      (fun acc v ->
        match J.to_int v with
        | Some n -> acc + n
        | None -> fail "%s: %s set_histogram.%s holds a non-integer" path label key)
      0
      (get_list hist ~path key)
  in
  List.iter
    (fun key ->
      if sum key <> get_int totals key then
        fail "%s: %s per-set %s do not sum to the layout total" path label key)
    [ "accesses"; "misses"; "evictions" ];
  label

let check_artifact path decisions_path =
  let json = parse path in
  require_schema json ~path "colayout/profile/v1";
  let layouts =
    match get_list json ~path "layouts" with
    | [] -> fail "%s: no layouts" path
    | ls -> ls
  in
  let labels = List.map (check_layout ~path) layouts in
  let deltas = get_list json ~path "delta" in
  if List.length deltas <> List.length layouts - 1 then
    fail "%s: expected %d delta entries, found %d" path
      (List.length layouts - 1)
      (List.length deltas);
  List.iter (fun d -> ignore (get_int d "conflict_reduction" + get_int d "miss_reduction")) deltas;
  let summary = J.Obj (get_obj json ~path "decisions") in
  let total = get_int summary "total" in
  if List.length layouts > 1 && total <= 0 then
    fail "%s: optimized layout present but no decisions recorded" path;
  (match decisions_path with
  | None -> ()
  | Some dpath ->
    let lines =
      String.split_on_char '\n' (read_file dpath) |> List.filter (fun l -> l <> "")
    in
    if List.length lines <> total then
      fail "%s: %d JSONL lines but the artifact counted %d decisions" dpath
        (List.length lines) total;
    List.iteri
      (fun i line ->
        match J.parse line with
        | ev ->
          if i = 0 then require_schema ev ~path:dpath "colayout/decisions/v1";
          ignore (get_int ev "step");
          ignore (get_str ev ~path:dpath "stage");
          ignore (get_str ev ~path:dpath "action")
        | exception J.Parse_error (pos, msg) ->
          fail "%s:%d does not parse: %s at byte %d" dpath (i + 1) msg pos)
      lines);
  Printf.printf "check_profile: %s ok (layouts: %s; %d decisions)\n" path
    (String.concat ", " labels) total

let () =
  set_tool "check_profile";
  match Array.to_list Sys.argv with
  | [ _; "bench"; path ] -> check_bench path
  | [ _; "artifact"; path ] -> check_artifact path None
  | [ _; "artifact"; path; decisions ] -> check_artifact path (Some decisions)
  | _ ->
    prerr_endline
      "usage: check_profile bench FILE | check_profile artifact PROFILE.json [DECISIONS.jsonl]";
    exit 2
