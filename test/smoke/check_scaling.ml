(* Scaling-study smoke validator:

   [check_scaling bench BENCH_scaling.json] — the bench's strong/weak
   scaling manifest conforms to colayout/bench-scaling/v1: both shapes
   (uniform and skewed) present in both curves, one run per jobs count in
   1..jobs_max, positive walls, one digest per strong shape (the
   determinism contract — the bench itself digest-compares every pooled
   run against jobs=1 before writing the manifest, and records the
   outcome as identical_results), weak runs digest_ok with positive
   efficiencies. Magnitude is gated on the recorded cores_available,
   matching check_parallel: on a multicore host the skewed-batch
   work-stealing-vs-fixed-chunk ratio at gate_jobs must clear 1.3x and
   the best uniform strong-scaling speedup must not fall below 1.0; on a
   single-core host (CI containers) domains only add overhead, so
   positivity is all we ask. *)

module J = Colayout_util.Json
open Smoke_check

let shape_names rows ~path key =
  List.map (fun row -> get_str row ~path:(path ^ "#" ^ key) "shape") rows

let require_shapes rows ~path key =
  let names = shape_names rows ~path key in
  List.iter
    (fun want ->
      if not (List.mem want names) then fail "%s: %s has no %S shape" path key want)
    [ "uniform"; "skewed" ]

let require_jobs_coverage ~path ~label ~jobs_max seen =
  List.iter
    (fun jobs ->
      if not (List.mem jobs seen) then fail "%s: %s has no run for jobs=%d" path label jobs)
    (List.init jobs_max (fun i -> i + 1))

let check_bench path =
  let json = parse path in
  require_schema json ~path "colayout/bench-scaling/v1";
  let jobs_max = get_int json "jobs_max" in
  let gate_jobs = get_int json "gate_jobs" in
  if jobs_max < 1 then fail "%s: jobs_max %d < 1" path jobs_max;
  if gate_jobs < 1 || gate_jobs > jobs_max then
    fail "%s: gate_jobs %d outside 1..%d" path gate_jobs jobs_max;
  if not (get_bool json ~path "identical_results") then
    fail "%s: identical_results is not true — a pooled run diverged from jobs=1" path;
  (* Strong curves: per shape, one digest, full jobs coverage, positive
     walls under both schedulers. *)
  let strong = get_list json ~path "strong" in
  require_shapes strong ~path "strong";
  List.iter
    (fun shape_row ->
      let shape = get_str shape_row ~path "shape" in
      let label = "strong." ^ shape in
      if get_int shape_row "total_evals" <= 0 then
        fail "%s: %s has non-positive total_evals" path label;
      if String.length (get_str shape_row ~path "digest") = 0 then
        fail "%s: %s has an empty digest" path label;
      let seen =
        List.map
          (fun run ->
            let jobs = get_int run "jobs" in
            List.iter
              (fun key ->
                if get_int run key <= 0 then
                  fail "%s: %s jobs=%d has non-positive %s" path label jobs key)
              [ "steal_wall_ns"; "fixed_wall_ns" ];
            (match Option.bind (J.member "steal_vs_fixed" run) J.to_float with
            | Some r when r > 0.0 -> ()
            | _ -> fail "%s: %s jobs=%d has no positive steal_vs_fixed" path label jobs);
            jobs)
          (get_list shape_row ~path "runs")
      in
      require_jobs_coverage ~path ~label ~jobs_max seen)
    strong;
  (* Weak curves: per shape, full jobs coverage, positive walls and
     efficiencies, digest_ok on every run. *)
  let weak = get_list json ~path "weak" in
  require_shapes weak ~path "weak";
  List.iter
    (fun shape_row ->
      let shape = get_str shape_row ~path "shape" in
      let label = "weak." ^ shape in
      let seen =
        List.map
          (fun run ->
            let jobs = get_int run "jobs" in
            if get_int run "wall_ns" <= 0 then
              fail "%s: %s jobs=%d has non-positive wall_ns" path label jobs;
            if get_int run "evals" <= 0 then
              fail "%s: %s jobs=%d has non-positive evals" path label jobs;
            (match Option.bind (J.member "efficiency" run) J.to_float with
            | Some e when e > 0.0 -> ()
            | _ -> fail "%s: %s jobs=%d has no positive efficiency" path label jobs);
            if not (get_bool run ~path "digest_ok") then
              fail "%s: %s jobs=%d diverged from jobs=1" path label jobs;
            jobs)
          (get_list shape_row ~path "runs")
      in
      require_jobs_coverage ~path ~label ~jobs_max seen)
    weak;
  let ratio =
    match Option.bind (J.member "skewed_steal_vs_fixed_at_gate_jobs" json) J.to_float with
    | Some r when r > 0.0 -> r
    | _ -> fail "%s: missing positive skewed_steal_vs_fixed_at_gate_jobs" path
  in
  let best =
    match Option.bind (J.member "best_uniform_strong_speedup" json) J.to_float with
    | Some s when s > 0.0 -> s
    | _ -> fail "%s: missing positive best_uniform_strong_speedup" path
  in
  (* Like check_parallel, the expectation scales with the recorded host
     width: on one core there is nothing for the scheduler to win. *)
  let _ =
    cores_gate json ~path
      ~what:(Printf.sprintf "skewed steal-vs-fixed ratio at gate_jobs=%d" gate_jobs)
      ~floor:1.3 ratio
  in
  let cores = cores_gate json ~path ~what:"best uniform strong speedup" ~floor:1.0 best in
  Printf.printf
    "check_scaling: %s ok (jobs 1..%d, %d cores, skew ratio %.2fx @ jobs=%d, best uniform \
     %.2fx)\n"
    path jobs_max cores ratio gate_jobs best

let () =
  set_tool "check_scaling";
  match Array.to_list Sys.argv with
  | [ _; "bench"; path ] -> check_bench path
  | _ ->
    prerr_endline "usage: check_scaling bench FILE";
    exit 2
