open Colayout_trace
module U = Colayout_util

let check = Alcotest.check

let test_trace_basics () =
  let t = Trace.of_list ~num_symbols:5 [ 0; 1; 1; 2; 4 ] in
  check Alcotest.int "length" 5 (Trace.length t);
  check Alcotest.int "get" 2 (Trace.get t 3);
  check Alcotest.int "distinct" 4 (Trace.distinct_count t);
  check (Alcotest.array Alcotest.int) "occurrences" [| 1; 2; 1; 0; 1 |] (Trace.occurrences t);
  check (Alcotest.array Alcotest.int) "first occ" [| 0; 1; 3; -1; 4 |] (Trace.first_occurrence t);
  Alcotest.check_raises "push oob" (Invalid_argument "Trace.push: symbol 5 out of [0,5)")
    (fun () -> Trace.push t 5)

let test_distinct_count_incremental () =
  (* The cached count must stay exact as pushes interleave with queries:
     query materializes the occurrence cache, then push maintains it
     incrementally (a stale cache would undercount new symbols or keep
     counting repeats). *)
  let t = Trace.create ~num_symbols:6 () in
  check Alcotest.int "empty" 0 (Trace.distinct_count t);
  Trace.push t 2;
  Trace.push t 2;
  check Alcotest.int "one distinct after repeats" 1 (Trace.distinct_count t);
  Trace.push t 0;
  check Alcotest.int "push after query is counted" 2 (Trace.distinct_count t);
  Trace.push t 0;
  Trace.push t 5;
  check Alcotest.int "repeat not double-counted" 3 (Trace.distinct_count t);
  check (Alcotest.array Alcotest.int) "occurrences track pushes" [| 2; 0; 2; 0; 0; 1 |]
    (Trace.occurrences t);
  (* The cross-check the seed computed from scratch every call. *)
  let reference = Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 (Trace.occurrences t) in
  check Alcotest.int "agrees with full recount" reference (Trace.distinct_count t);
  (* Queries never freeze the trace: a never-queried trace and a
     queried-then-extended trace agree. *)
  let fresh = Trace.of_list ~num_symbols:6 (Trace.to_list t) in
  check Alcotest.int "matches never-queried trace" (Trace.distinct_count fresh)
    (Trace.distinct_count t)

let test_trim () =
  let t = Trace.of_list ~num_symbols:4 [ 0; 0; 1; 1; 1; 2; 1; 1; 0 ] in
  let trimmed = Trim.trim t in
  check (Alcotest.list Alcotest.int) "trimmed" [ 0; 1; 2; 1; 0 ] (Trace.to_list trimmed);
  check Alcotest.bool "is_trimmed" true (Trim.is_trimmed trimmed);
  check Alcotest.bool "original not trimmed" false (Trim.is_trimmed t);
  (* Idempotent. *)
  check Alcotest.bool "idempotent" true (Trace.equal trimmed (Trim.trim trimmed))

let trim_prop =
  QCheck.Test.make ~name:"trim removes exactly consecutive duplicates" ~count:200
    QCheck.(list (int_bound 5))
    (fun xs ->
      let t = Trace.of_list ~num_symbols:6 xs in
      let trimmed = Trim.trim t in
      Trim.is_trimmed trimmed
      &&
      (* Re-expanding: trimmed is the subsequence of xs with runs collapsed. *)
      let rec collapse = function
        | [] -> []
        | [ x ] -> [ x ]
        | x :: (y :: _ as rest) -> if x = y then collapse rest else x :: collapse rest
      in
      Trace.to_list trimmed = collapse xs)

let test_prune () =
  let t = Trace.of_list ~num_symbols:5 [ 0; 1; 0; 2; 0; 1; 3; 0; 1 ] in
  let pruned, report = Prune.prune t ~top:2 in
  (* Hot: 0 (4 times), 1 (3 times). *)
  check (Alcotest.list Alcotest.int) "pruned" [ 0; 1; 0; 0; 1; 0; 1 ] (Trace.to_list pruned);
  check Alcotest.int "kept symbols" 2 report.Prune.kept_symbols;
  check Alcotest.int "total symbols" 4 report.Prune.total_symbols;
  check Alcotest.int "kept events" 7 report.Prune.kept_events;
  check (Alcotest.float 1e-9) "coverage" (7.0 /. 9.0) report.Prune.coverage

let test_prune_hot_symbols_deterministic_ties () =
  let t = Trace.of_list ~num_symbols:4 [ 3; 2; 1; 0 ] in
  (* All counts equal: ties break toward smaller id. *)
  check (Alcotest.array Alcotest.int) "ties" [| 0; 1 |] (Prune.hot_symbols t ~top:2)

let test_prune_top_larger_than_universe () =
  let t = Trace.of_list ~num_symbols:3 [ 0; 1 ] in
  let pruned, report = Prune.prune t ~top:100 in
  check Alcotest.bool "identity" true (Trace.equal t pruned);
  check (Alcotest.float 1e-9) "full coverage" 1.0 report.Prune.coverage

let test_sample () =
  let t = Trace.of_list ~num_symbols:10 (List.init 10 Fun.id) in
  let s = Sample.windows t ~period:5 ~window:2 in
  check (Alcotest.list Alcotest.int) "windows" [ 0; 1; 5; 6 ] (Trace.to_list s);
  let p = Sample.prefix t ~n:3 in
  check (Alcotest.list Alcotest.int) "prefix" [ 0; 1; 2 ] (Trace.to_list p);
  check (Alcotest.float 1e-9) "ratio" 0.4 (Sample.sampling_ratio ~period:5 ~window:2);
  Alcotest.check_raises "bad window" (Invalid_argument "Sample.windows: need 0 < window <= period")
    (fun () -> ignore (Sample.windows t ~period:2 ~window:3))

let test_lru_stack () =
  let s = Lru_stack.create () in
  check (Alcotest.option Alcotest.int) "first access" None (Lru_stack.access s 1);
  check (Alcotest.option Alcotest.int) "second symbol" None (Lru_stack.access s 2);
  (* Depth of 1 is now 2 (2 is on top). *)
  check (Alcotest.option Alcotest.int) "reaccess 1" (Some 2) (Lru_stack.access s 1);
  check (Alcotest.list Alcotest.int) "contents MRU first" [ 1; 2 ] (Lru_stack.contents s);
  check (Alcotest.option Alcotest.int) "immediate reuse" (Some 1) (Lru_stack.access s 1);
  check Alcotest.int "depth" 2 (Lru_stack.depth s);
  check (Alcotest.list Alcotest.int) "top_k" [ 1 ] (Lru_stack.top_k s ~k:1);
  check (Alcotest.option Alcotest.int) "position" (Some 1) (Lru_stack.position s 2)

let lru_stack_matches_naive =
  QCheck.Test.make ~name:"lru stack distance matches naive distinct count" ~count:100
    QCheck.(list (int_bound 8))
    (fun xs ->
      let s = Lru_stack.create () in
      let seen = ref [] in
      List.for_all
        (fun x ->
          let expected =
            match List.find_index (fun y -> y = x) !seen with
            | None -> None
            | Some _ ->
              (* distinct symbols at positions before first occurrence of x in
                 the recency list, plus one for x itself *)
              let rec depth acc = function
                | [] -> None
                | y :: rest -> if y = x then Some (acc + 1) else depth (acc + 1) rest
              in
              depth 0 !seen
          in
          let got = Lru_stack.access s x in
          seen := x :: List.filter (fun y -> y <> x) !seen;
          got = expected)
        xs)

let test_histogram () =
  let h = Histogram.create () in
  Histogram.add h 3;
  Histogram.add h 3;
  Histogram.add_many h 1 5;
  Histogram.add_infinite h;
  check Alcotest.int "count" 2 (Histogram.count h 3);
  check Alcotest.int "total" 8 (Histogram.total h);
  check Alcotest.int "finite" 7 (Histogram.finite_total h);
  check Alcotest.int "infinite" 1 (Histogram.infinite h);
  check Alcotest.int "max bin" 3 (Histogram.max_bin h);
  check Alcotest.int "cumulative" 5 (Histogram.cumulative_at h 2);
  check (Alcotest.float 1e-9) "mean" ((5.0 +. 6.0) /. 7.0) (Histogram.mean h);
  check Alcotest.int "median bin" 1 (Histogram.quantile h ~q:0.5);
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)) "sorted" [ (1, 5); (3, 2) ]
    (Histogram.to_sorted_list h)

let test_stack_dist_small () =
  let t = Trace.of_list ~num_symbols:3 [ 0; 1; 0; 2; 0 ] in
  let r = Stack_dist.run t in
  check Alcotest.int "accesses" 5 r.Stack_dist.accesses;
  check Alcotest.int "distinct" 3 r.Stack_dist.distinct;
  check Alcotest.int "cold accesses" 3 (Histogram.infinite r.Stack_dist.distances);
  (* 0 reused over {1} then over {2}: distances 1 and 1. *)
  check Alcotest.int "distance-1 count" 2 (Histogram.count r.Stack_dist.distances 1);
  (* Reuse times: positions 2-0=2 and 4-2=2. *)
  check Alcotest.int "reuse time 2" 2 (Histogram.count r.Stack_dist.reuse_times 2)

let stack_dist_matches_naive =
  QCheck.Test.make ~name:"tree stack distances match quadratic reference" ~count:60
    QCheck.(list (int_bound 10))
    (fun xs ->
      let t = Trace.of_list ~num_symbols:11 xs in
      let r = Stack_dist.run t in
      let naive = Stack_dist.distances_naive t in
      let h = Histogram.create () in
      Array.iter
        (function None -> Histogram.add_infinite h | Some d -> Histogram.add h d)
        naive;
      Histogram.to_sorted_list h = Histogram.to_sorted_list r.Stack_dist.distances
      && Histogram.infinite h = Histogram.infinite r.Stack_dist.distances)

let miss_ratio_matches_cache_sim =
  QCheck.Test.make
    ~name:"stack-distance miss ratio equals fully-associative LRU simulation" ~count:60
    QCheck.(pair (int_range 1 8) (list_of_size Gen.(return 200) (int_bound 12)))
    (fun (capacity, xs) ->
      QCheck.assume (xs <> []);
      let t = Trace.of_list ~num_symbols:13 xs in
      let r = Stack_dist.run t in
      let cache = Colayout_cache.Fully_assoc.create ~capacity in
      let misses = ref 0 in
      List.iter (fun x -> if not (Colayout_cache.Fully_assoc.access_line cache x) then incr misses) xs;
      let expected = float_of_int !misses /. float_of_int (List.length xs) in
      abs_float (Stack_dist.miss_ratio_at r ~capacity -. expected) < 1e-9)

let () =
  Alcotest.run "trace"
    [
      ( "trace",
        [
          Alcotest.test_case "basics" `Quick test_trace_basics;
          Alcotest.test_case "distinct_count cache stays exact" `Quick
            test_distinct_count_incremental;
        ] );
      ( "trim",
        [
          Alcotest.test_case "trim" `Quick test_trim;
          QCheck_alcotest.to_alcotest trim_prop;
        ] );
      ( "prune",
        [
          Alcotest.test_case "prune" `Quick test_prune;
          Alcotest.test_case "tie break" `Quick test_prune_hot_symbols_deterministic_ties;
          Alcotest.test_case "top > universe" `Quick test_prune_top_larger_than_universe;
        ] );
      ("sample", [ Alcotest.test_case "windows/prefix" `Quick test_sample ]);
      ( "lru_stack",
        [
          Alcotest.test_case "basics" `Quick test_lru_stack;
          QCheck_alcotest.to_alcotest lru_stack_matches_naive;
        ] );
      ("histogram", [ Alcotest.test_case "basics" `Quick test_histogram ]);
      ( "stack_dist",
        [
          Alcotest.test_case "small" `Quick test_stack_dist_small;
          QCheck_alcotest.to_alcotest stack_dist_matches_naive;
          QCheck_alcotest.to_alcotest miss_ratio_matches_cache_sim;
        ] );
    ]

(* silence unused-module warning for U *)
let _ = U.Stats.mean
