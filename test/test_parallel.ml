(* Parallel execution layer: Pool unit tests (ordering, exception
   propagation, nested-use rejection, the jobs=1 no-domain path), atomic
   Metrics + merge, per-domain Span recording with exception safety across
   domain boundaries, Ctx memo single-flight under concurrency, and the
   harness-wide determinism contract — every registry experiment renders
   byte-identical tables at jobs=1 and jobs=4. *)

module U = Colayout_util
module H = Colayout_harness
module Pool = U.Pool

let check = Alcotest.check

exception Boom of int

(* ---------- Pool ---------- *)

let test_pool_ordering () =
  Pool.with_pool ~jobs:4 (fun pool ->
      check Alcotest.int "jobs" 4 (Pool.jobs pool);
      let xs = List.init 100 Fun.id in
      check (Alcotest.list Alcotest.int) "results in input order"
        (List.map (fun x -> x * x) xs)
        (Pool.map pool (fun x -> x * x) xs);
      check (Alcotest.list Alcotest.int) "empty batch" [] (Pool.map pool Fun.id []);
      (* The batch really ran off the caller's domain. *)
      let caller = (Domain.self () :> int) in
      let tids = Pool.map pool (fun _ -> (Domain.self () :> int)) (List.init 8 Fun.id) in
      check Alcotest.bool "tasks ran on worker domains" true
        (List.for_all (fun t -> t <> caller) tids))

let test_pool_exception () =
  Pool.with_pool ~jobs:4 (fun pool ->
      (* All tasks run; the lowest-indexed failure is re-raised, exactly as
         a sequential fold would have surfaced it first. *)
      let ran = Atomic.make 0 in
      (match
         Pool.map pool
           (fun i ->
             Atomic.incr ran;
             if i = 3 || i = 5 then raise (Boom i);
             i)
           (List.init 8 Fun.id)
       with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> check Alcotest.int "lowest failing index wins" 3 i);
      check Alcotest.int "every task still ran" 8 (Atomic.get ran);
      (* The pool survives a failed batch. *)
      check (Alcotest.list Alcotest.int) "pool usable after failure" [ 2; 4 ]
        (Pool.map pool (fun x -> 2 * x) [ 1; 2 ]))

let test_pool_nested_rejection () =
  Pool.with_pool ~jobs:2 (fun pool ->
      match Pool.map pool (fun () -> Pool.map pool Fun.id [ 1 ]) [ () ] with
      | _ -> Alcotest.fail "nested use should be rejected"
      | exception Invalid_argument msg ->
        check Alcotest.bool "mentions nested use" true
          (String.length msg >= 12 && String.sub msg 0 12 = "Pool: nested"))

let test_pool_jobs1_inline () =
  Pool.with_pool ~jobs:1 (fun pool ->
      check Alcotest.int "jobs" 1 (Pool.jobs pool);
      let caller = (Domain.self () :> int) in
      let tids = Pool.map pool (fun _ -> (Domain.self () :> int)) [ 0; 1; 2 ] in
      check (Alcotest.list Alcotest.int) "runs inline on the caller's domain"
        [ caller; caller; caller ] tids;
      (* Sequential semantics: a raise stops the batch at its index. *)
      let ran = ref 0 in
      (match
         Pool.map pool
           (fun i ->
             incr ran;
             if i = 1 then raise (Boom i))
           [ 0; 1; 2 ]
       with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom _ -> ());
      check Alcotest.int "inline batch stopped at the raise" 2 !ran)

let test_pool_run_all_and_metrics () =
  let sink = U.Metrics.create () in
  Pool.with_pool ~jobs:2 ~metrics:sink (fun pool ->
      let hits = Atomic.make 0 in
      Pool.run_all pool (List.init 10 (fun _ () -> Atomic.incr hits));
      check Alcotest.int "run_all ran every thunk" 10 (Atomic.get hits));
  (* Per-domain deltas folded into the sink via Metrics.merge. *)
  check (Alcotest.option Alcotest.int) "pool.tasks folded" (Some 10)
    (U.Metrics.find_counter sink "pool.tasks");
  let per_worker =
    List.filter
      (fun (name, _) ->
        String.length name > 12
        && String.sub name 0 12 = "pool.worker."
        && String.sub name (String.length name - 6) 6 = ".tasks")
      (U.Metrics.counters sink)
  in
  check Alcotest.int "per-worker counters sum to the total" 10
    (List.fold_left (fun acc (_, v) -> acc + v) 0 per_worker)

(* ---------- Work-stealing scheduler properties ---------- *)

(* A deterministic task whose cost scales with [weight] and whose result
   depends only on (weight, index) — never on the executing worker — so
   any result difference across schedules is a real determinism break. *)
let spin weight i =
  let acc = ref (i + 1) in
  for k = 1 to weight * 200 do
    acc := (!acc * 31 + k) land 0xFFFFFF
  done;
  !acc

(* The three batch shapes the scheduler must not reorder results under:
   homogeneous, a heavy head (the worst case for a contiguous split — the
   first worker's chunk holds all the weight), and one giant task among
   singletons. *)
let skew_shapes =
  [
    ("uniform", Array.make 64 1);
    ("front-loaded", Array.init 32 (fun i -> if i < 4 then 50 else 1));
    ("single-giant", Array.init 24 (fun i -> if i = 0 then 200 else 1));
  ]

let test_pool_skew_determinism () =
  List.iter
    (fun (shape, weights) ->
      let expected = Array.mapi (fun i w -> spin w i) weights in
      List.iter
        (fun jobs ->
          Pool.with_pool ~jobs (fun pool ->
              let got =
                Pool.map_array_w pool
                  (fun ~worker w_and_i ->
                    check Alcotest.bool
                      (Printf.sprintf "%s jobs=%d: worker id in range" shape jobs)
                      true
                      (worker >= 0 && worker < jobs);
                    let w, i = w_and_i in
                    spin w i)
                  (Array.mapi (fun i w -> (w, i)) weights)
              in
              check (Alcotest.array Alcotest.int)
                (Printf.sprintf "%s jobs=%d: identical to sequential" shape jobs)
                expected got))
        [ 1; 2; 4 ])
    skew_shapes

let test_pool_skew_exception () =
  (* Stealing redistributes the raising tasks across workers; the caller
     must still see the lowest-indexed failure, and the whole batch must
     still run (pooled batches don't stop early). *)
  let weights = Array.init 32 (fun i -> if i < 4 then 50 else 1) in
  Pool.with_pool ~jobs:4 (fun pool ->
      let ran = Atomic.make 0 in
      (match
         Pool.map_array pool
           (fun (w, i) ->
             Atomic.incr ran;
             let r = spin w i in
             if i = 2 || i = 30 then raise (Boom i);
             r)
           (Array.mapi (fun i w -> (w, i)) weights)
       with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i ->
        check Alcotest.int "lowest failing index wins under stealing" 2 i);
      check Alcotest.int "every task still ran" 32 (Atomic.get ran))

let test_pool_skew_task_conservation () =
  (* Exactly n tasks execute whatever the steal pattern — no task lost,
     none run twice — and the accounting ([pool.tasks], per-worker splits,
     [pool.steals]) folds to match. *)
  List.iter
    (fun (shape, weights) ->
      let sink = U.Metrics.create () in
      let n = Array.length weights in
      Pool.with_pool ~jobs:4 ~metrics:sink (fun pool ->
          ignore (Pool.map_array pool (fun (w, i) -> spin w i)
                    (Array.mapi (fun i w -> (w, i)) weights)));
      check (Alcotest.option Alcotest.int)
        (shape ^ ": pool.tasks = batch size")
        (Some n)
        (U.Metrics.find_counter sink "pool.tasks");
      let prefixed prefix suffix name =
        let lp = String.length prefix and ls = String.length suffix in
        String.length name > lp + ls
        && String.sub name 0 lp = prefix
        && String.sub name (String.length name - ls) ls = suffix
      in
      let sum suffix =
        List.fold_left
          (fun acc (name, v) ->
            if prefixed "pool.worker." suffix name then acc + v else acc)
          0 (U.Metrics.counters sink)
      in
      check Alcotest.int (shape ^ ": per-worker task counts sum to the total") n
        (sum ".tasks");
      let steals = Option.value ~default:0 (U.Metrics.find_counter sink "pool.steals") in
      check Alcotest.bool (shape ^ ": steal count folded and sane") true
        (steals >= 0 && steals <= n))
    skew_shapes

let test_pool_default_jobs () =
  check Alcotest.int "default_jobs matches the documented formula"
    (max 1 (Domain.recommended_domain_count () - 1))
    (Pool.default_jobs ());
  check Alcotest.bool "default_jobs is at least 1" true (Pool.default_jobs () >= 1)

(* ---------- Metrics ---------- *)

let test_metrics_atomic_increments () =
  let m = U.Metrics.create () in
  let c = U.Metrics.counter m "hammer" in
  Pool.with_pool ~jobs:4 (fun pool ->
      Pool.run_all pool
        (List.init 4 (fun _ () ->
             for _ = 1 to 10_000 do
               U.Metrics.incr c
             done)));
  check Alcotest.int "no update lost across 4 domains" 40_000 (U.Metrics.count c)

let test_metrics_merge () =
  let mk lookups hits =
    let m = U.Metrics.create () in
    U.Metrics.add m "t.lookups" lookups;
    U.Metrics.add m "t.hits" hits;
    U.Metrics.add m "t.misses" (lookups - hits);
    U.Metrics.set_gauge m "level" (float_of_int lookups);
    m
  in
  let into = mk 10 4 in
  U.Metrics.merge ~into (mk 6 5);
  let v name = Option.value ~default:0 (U.Metrics.find_counter into name) in
  check Alcotest.int "lookups add" 16 (v "t.lookups");
  check Alcotest.int "hits add" 9 (v "t.hits");
  check Alcotest.int "hits + misses = lookups survives the fold" (v "t.lookups")
    (v "t.hits" + v "t.misses");
  check Alcotest.bool "gauge overwritten with source level" true
    (List.assoc "level" (U.Metrics.gauges into) = 6.0);
  (* Timers accumulate calls and nanoseconds. *)
  let a = U.Metrics.create () and b = U.Metrics.create () in
  ignore (U.Metrics.time a "w" (fun () -> ()));
  ignore (U.Metrics.time b "w" (fun () -> ()));
  ignore (U.Metrics.time b "w" (fun () -> ()));
  U.Metrics.merge ~into:a b;
  (match U.Metrics.timers a with
  | [ ("w", 3, _) ] -> ()
  | _ -> Alcotest.fail "timer calls did not add");
  (* Zero-valued source cells create no entries. *)
  let empty = U.Metrics.create () in
  ignore (U.Metrics.counter empty "untouched");
  let target = U.Metrics.create () in
  U.Metrics.merge ~into:target empty;
  check (Alcotest.option Alcotest.int) "no entry for a zero delta" None
    (U.Metrics.find_counter target "untouched")

(* ---------- Span across domains ---------- *)

let test_span_per_domain_merge () =
  let t = U.Span.create () in
  let caller = (Domain.self () :> int) in
  U.Span.with_span t ~cat:"main" "caller-side" (fun () ->
      Pool.with_pool ~jobs:2 (fun pool ->
          Pool.run_all pool
            (List.init 4 (fun i () ->
                 U.Span.with_span t ~cat:"task" (Printf.sprintf "task-%d" i) (fun () ->
                     ignore (Sys.opaque_identity (List.init 100 Fun.id)))))));
  let spans = U.Span.spans t in
  check Alcotest.int "all five spans recorded" 5 (List.length spans);
  let tasks = List.filter (fun s -> s.U.Span.cat = "task") spans in
  check Alcotest.bool "task spans carry worker domain ids" true
    (List.for_all (fun s -> s.U.Span.tid <> caller) tasks);
  check Alcotest.bool "worker spans are top-level on their own domain" true
    (List.for_all (fun s -> s.U.Span.depth = 0) tasks);
  (* The merged timeline is deterministic and every lane appears in the
     Chrome export with its own tid. *)
  match U.Json.member "traceEvents" (U.Span.to_chrome_json t) with
  | Some (U.Json.Arr evs) -> check Alcotest.int "chrome events" 5 (List.length evs)
  | _ -> Alcotest.fail "no traceEvents"

let test_span_exception_across_domains () =
  let t = U.Span.create () in
  (match
     Pool.with_pool ~jobs:2 (fun pool ->
         Pool.run_all pool
           [
             (fun () -> U.Span.with_span t ~cat:"task" "boom" (fun () -> raise (Boom 7)));
           ])
   with
  | () -> Alcotest.fail "expected Boom"
  | exception Boom 7 -> ()
  | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e));
  (* The span closed on the worker before the exception crossed domains. *)
  check Alcotest.int "span recorded despite raise" 1 (U.Span.count t);
  match U.Span.spans t with
  | [ s ] -> check Alcotest.string "failing span kept its name" "boom" s.U.Span.name
  | _ -> Alcotest.fail "expected exactly one span"

let test_span_chrome_under_stealing () =
  (* A single-giant batch is the shape that forces work stealing: the
     worker holding task 0 is busy for the whole batch, so the rest of
     the queue migrates. Every task records a span; the Chrome export
     must carry one complete ("X") event per task with sane timestamps,
     whatever the steal pattern was. *)
  let t = U.Span.create () in
  let weights = Array.init 24 (fun i -> if i = 0 then 200 else 1) in
  Pool.with_pool ~jobs:4 (fun pool ->
      ignore
        (Pool.map_array pool
           (fun (w, i) ->
             U.Span.with_span t ~cat:"task" (Printf.sprintf "steal-%d" i) (fun () ->
                 spin w i))
           (Array.mapi (fun i w -> (w, i)) weights)));
  check Alcotest.int "one span per task" 24 (U.Span.count t);
  let reparsed = U.Json.parse (U.Json.to_string ~pretty:true (U.Span.to_chrome_json t)) in
  match Option.bind (U.Json.member "traceEvents" reparsed) U.Json.to_list with
  | Some events ->
    check Alcotest.int "one chrome event per span" 24 (List.length events);
    let names =
      List.filter_map (fun ev -> Option.bind (U.Json.member "name" ev) U.Json.to_str) events
    in
    for i = 0 to 23 do
      check Alcotest.bool
        (Printf.sprintf "span steal-%d exported" i)
        true
        (List.mem (Printf.sprintf "steal-%d" i) names)
    done;
    List.iter
      (fun ev ->
        let geti k = Option.bind (U.Json.member k ev) U.Json.to_int in
        check Alcotest.bool "ts non-negative" true (Option.get (geti "ts") >= 0);
        check Alcotest.bool "dur non-negative" true (Option.get (geti "dur") >= 0);
        check Alcotest.bool "tid present" true (geti "tid" <> None);
        check (Alcotest.option Alcotest.string) "complete event" (Some "X")
          (Option.bind (U.Json.member "ph" ev) U.Json.to_str))
      events
  | None -> Alcotest.fail "no traceEvents"

(* ---------- Ctx single-flight ---------- *)

let memo_counts ctx tbl =
  let v s =
    Option.value ~default:0
      (U.Metrics.find_counter (H.Ctx.metrics ctx) (Printf.sprintf "ctx.memo.%s.%s" tbl s))
  in
  (v "lookups", v "hits", v "misses")

let test_ctx_single_flight_analysis () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let ctx = H.Ctx.create ~scale:H.Ctx.Fast ~pool () in
      let name = "429.mcf" in
      let results = H.Ctx.par_map ctx (fun _ -> H.Ctx.analysis ctx name) (List.init 8 Fun.id) in
      check Alcotest.int "everyone got an analysis" 8 (List.length results);
      (* Physically one value: the seven waiters were handed the first
         domain's computation, not copies. *)
      (match results with
      | first :: rest -> List.iter (fun a -> check Alcotest.bool "same value" true (a == first)) rest
      | [] -> assert false);
      let lookups, hits, misses = memo_counts ctx "analyses" in
      check Alcotest.int "computed exactly once" 1 misses;
      check Alcotest.int "eight lookups" 8 lookups;
      check Alcotest.int "seven single-flight hits" 7 hits;
      check Alcotest.int "hits + misses = lookups" lookups (hits + misses))

let test_ctx_single_flight_corun () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let ctx = H.Ctx.create ~scale:H.Ctx.Fast ~pool () in
      let self = ("429.mcf", Colayout.Optimizer.Original) in
      let peer = ("470.lbm", Colayout.Optimizer.Original) in
      let results =
        H.Ctx.par_map ctx
          (fun _ -> H.Ctx.corun_stats ctx ~hw:false ~self ~peer)
          (List.init 6 Fun.id)
      in
      (match results with
      | first :: rest ->
        List.iter (fun s -> check Alcotest.bool "one simulation shared" true (s == first)) rest
      | [] -> assert false);
      let lookups, hits, misses = memo_counts ctx "corun_cache" in
      check Alcotest.int "one co-run simulation" 1 misses;
      check Alcotest.int "six lookups" 6 lookups;
      check Alcotest.int "hits + misses = lookups" lookups (hits + misses))

(* ---------- Harness-wide determinism: jobs=1 vs jobs=4 ---------- *)

let render_suite ~jobs =
  Pool.with_pool ~jobs (fun pool ->
      let ctx = H.Ctx.create ~scale:H.Ctx.Fast ~pool () in
      List.map
        (fun (id, tables) -> (id, List.map U.Table.render tables))
        (H.Registry.run_by_ids ctx H.Registry.ids))

let test_determinism_all_experiments () =
  let seq = render_suite ~jobs:1 in
  let par = render_suite ~jobs:4 in
  List.iter2
    (fun (id, seq_tables) (id', par_tables) ->
      check Alcotest.string "same experiment" id id';
      check Alcotest.int (id ^ ": same table count") (List.length seq_tables)
        (List.length par_tables);
      List.iteri
        (fun i (a, b) ->
          check Alcotest.string (Printf.sprintf "%s table %d byte-identical" id i) a b)
        (List.combine seq_tables par_tables))
    seq par

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "ordering" `Quick test_pool_ordering;
          Alcotest.test_case "exception-propagation" `Quick test_pool_exception;
          Alcotest.test_case "nested-rejection" `Quick test_pool_nested_rejection;
          Alcotest.test_case "jobs1-inline" `Quick test_pool_jobs1_inline;
          Alcotest.test_case "run-all-metrics" `Quick test_pool_run_all_and_metrics;
          Alcotest.test_case "skew-determinism" `Quick test_pool_skew_determinism;
          Alcotest.test_case "skew-exception" `Quick test_pool_skew_exception;
          Alcotest.test_case "skew-task-conservation" `Quick test_pool_skew_task_conservation;
          Alcotest.test_case "default-jobs" `Quick test_pool_default_jobs;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "atomic-increments" `Quick test_metrics_atomic_increments;
          Alcotest.test_case "merge" `Quick test_metrics_merge;
        ] );
      ( "span",
        [
          Alcotest.test_case "per-domain-merge" `Quick test_span_per_domain_merge;
          Alcotest.test_case "exception-across-domains" `Quick test_span_exception_across_domains;
          Alcotest.test_case "chrome-export-under-stealing" `Quick
            test_span_chrome_under_stealing;
        ] );
      ( "ctx",
        [
          Alcotest.test_case "single-flight-analysis" `Slow test_ctx_single_flight_analysis;
          Alcotest.test_case "single-flight-corun" `Slow test_ctx_single_flight_corun;
        ] );
      ( "determinism",
        [ Alcotest.test_case "all-experiments-jobs1-vs-jobs4" `Slow test_determinism_all_experiments ] );
    ]
