(* Tests for the PR-6 delta (incremental) evaluation path:

   - the property drive: >= 10k random swap/relocate/undo/commit sequences
     through [Layout_eval.Delta] across >= 3 cache geometries, asserting
     the running miss count is bit-equal to a fresh full
     [miss_ratio_of_order] after every resync interval and at the end,
     and equal to the [Kernel_baseline] seed oracle at sampled resync
     points and at the end;
   - undo exactness and the single-pending-move discipline;
   - [Anneal.search] mode equivalence (`Delta vs `Full, byte-identical)
     with and without [max_span];
   - the degenerate-input guard: single-function programs return the
     trivial order immediately instead of spinning in the b <> a redraw
     loop. *)

open Colayout
module W = Colayout_workloads
module E = Colayout_exec
module C = Colayout_cache
module U = Colayout_util
module Delta = Layout_eval.Delta

let check = Alcotest.check

let bits = Int64.bits_of_float

let check_bit_equal what a b = check Alcotest.int64 what (bits a) (bits b)

let program_of ~seed ~style =
  W.Gen.build
    {
      W.Gen.default_profile with
      pname = Printf.sprintf "layout-eval-delta-%d" seed;
      seed;
      style;
      phases = 2;
      funcs_per_phase = 3;
      shared_funcs = 1;
      arms = 3;
      arm_blocks = 2;
      arm_work = 30;
      cold_funcs = 2;
      iters_per_phase = 25;
    }

let trace_of program = Pipeline.reference_trace program (E.Interp.ref_input ~max_blocks:6_000 ())

let geometries =
  [
    C.Params.make ~size_bytes:2048 ~assoc:2 ~line_bytes:64;
    C.Params.make ~size_bytes:1024 ~assoc:1 ~line_bytes:32;
    C.Params.make ~size_bytes:8192 ~assoc:4 ~line_bytes:64;
  ]

(* ------------------------------------------------- the property drive *)

(* [moves] random proposals per geometry: ~45% committed swaps/relocates,
   ~45% undone, ~10% undone-then-reapplied — every path through the move
   API. The ledger is audited against a fresh full evaluation at every
   auto-resync boundary and against the seed oracle at sampled points. *)
let drive_moves ~params ~program ~trace ~moves ~resync_interval ~seed =
  let engine = Layout_eval.create ~params program trace in
  let nf = Layout_eval.num_funcs engine in
  let prng = U.Prng.create ~seed in
  let order0 = Array.init nf Fun.id in
  U.Prng.shuffle prng order0;
  let sess = Delta.start ~resync_interval engine order0 in
  check_bit_equal "session start = full eval"
    (Layout_eval.miss_ratio_of_order engine order0)
    (Delta.miss_ratio sess);
  let committed = ref 0 in
  let reapplied = ref 0 in
  for i = 1 to moves do
    let a = U.Prng.int prng nf in
    let b = ref (U.Prng.int prng nf) in
    while !b = a do
      b := U.Prng.int prng nf
    done;
    let b = !b in
    let swap = U.Prng.bool prng ~p:0.5 in
    let mr = if swap then Delta.apply_swap sess a b else Delta.apply_relocate sess a b in
    let roll = U.Prng.float prng in
    if roll < 0.45 then begin
      Delta.commit sess;
      incr committed;
      if !committed mod resync_interval = 0 then begin
        (* The auto-resync just ran inside [commit]; the running count must
           replay bit-for-bit through a fresh full evaluation... *)
        let order = Delta.order sess in
        check_bit_equal
          (Printf.sprintf "resync point %d = full eval (%s)" i (C.Params.to_string params))
          (Layout_eval.miss_ratio_of_order engine order)
          (Delta.miss_ratio sess);
        (* ... and, sampled (the seed path is ~7x slower), through the seed
           oracle itself. *)
        if !committed mod (resync_interval * 8) = 0 then
          check_bit_equal
            (Printf.sprintf "resync point %d = Kernel_baseline" i)
            (Kernel_baseline.miss_ratio_of_function_order ~params program trace order)
            (Delta.miss_ratio sess)
      end
    end
    else begin
      Delta.undo sess;
      if roll >= 0.9 then begin
        (* Re-apply the identical move: the delta must reproduce the ratio
           it just computed, bit for bit. *)
        incr reapplied;
        let mr2 = if swap then Delta.apply_swap sess a b else Delta.apply_relocate sess a b in
        check_bit_equal (Printf.sprintf "reapplied move %d" i) mr mr2;
        Delta.undo sess
      end
    end
  done;
  (* Explicit final audit: resync (which hard-fails internally on any
     per-set divergence), then full engine and seed-oracle comparisons. *)
  let final = Delta.resync sess in
  let order = Delta.order sess in
  check_bit_equal "final = running" (Delta.miss_ratio sess) final;
  check_bit_equal
    (Printf.sprintf "final = full eval (%s)" (C.Params.to_string params))
    (Layout_eval.miss_ratio_of_order engine order)
    final;
  check_bit_equal "final = Kernel_baseline"
    (Kernel_baseline.miss_ratio_of_function_order ~params program trace order)
    final;
  let st = Delta.stats sess in
  check Alcotest.bool "delta path actually replayed fewer events than full recompute" true
    (st.Delta.replayed_events < st.Delta.moves * Layout_eval.trace_length engine);
  check Alcotest.int "moves counted" (moves + !reapplied) st.Delta.moves

let test_property_drive () =
  let program = program_of ~seed:41 ~style:W.Gen.default_profile.W.Gen.style in
  let trace = trace_of program in
  List.iteri
    (fun i params ->
      drive_moves ~params ~program ~trace ~moves:3_500 ~resync_interval:32 ~seed:(100 + i))
    geometries

let test_property_drive_dispatch () =
  (* A second trace shape (interpreter-style dispatch loop) at a tighter
     resync cadence; together with the phased drive this pushes the move
     count past 10k sequences over >= 3 geometries. *)
  let program = program_of ~seed:57 ~style:(W.Gen.Dispatch { table = 4; zipf_s = 0.8 }) in
  let trace = trace_of program in
  drive_moves
    ~params:(C.Params.make ~size_bytes:4096 ~assoc:2 ~line_bytes:64)
    ~program ~trace ~moves:1_500 ~resync_interval:8 ~seed:7

(* --------------------------------------------------- API discipline *)

let test_move_api_discipline () =
  let program = program_of ~seed:41 ~style:W.Gen.default_profile.W.Gen.style in
  let trace = trace_of program in
  let params = List.hd geometries in
  let engine = Layout_eval.create ~params program trace in
  let nf = Layout_eval.num_funcs engine in
  let sess = Delta.start engine (Array.init nf Fun.id) in
  let mr0 = Delta.miss_ratio sess in
  (* Undo restores the ratio and the order, bit for bit. *)
  ignore (Delta.apply_swap sess 0 (nf - 1));
  Delta.undo sess;
  check_bit_equal "undo restores ratio" mr0 (Delta.miss_ratio sess);
  check (Alcotest.array Alcotest.int) "undo restores order" (Array.init nf Fun.id)
    (Delta.order sess);
  (* One pending move at a time. *)
  ignore (Delta.apply_swap sess 0 1);
  Alcotest.check_raises "second apply rejected"
    (Invalid_argument "Layout_eval.Delta: a move is already pending — commit or undo it first")
    (fun () -> ignore (Delta.apply_swap sess 0 1));
  Alcotest.check_raises "resync with pending move rejected"
    (Invalid_argument "Layout_eval.Delta.resync: commit or undo the pending move first")
    (fun () -> ignore (Delta.resync sess));
  Delta.commit sess;
  Alcotest.check_raises "commit without pending rejected"
    (Invalid_argument "Layout_eval.Delta.commit: no pending move") (fun () -> Delta.commit sess);
  Alcotest.check_raises "undo without pending rejected"
    (Invalid_argument "Layout_eval.Delta.undo: no pending move") (fun () -> Delta.undo sess);
  (* Degenerate positions. *)
  Alcotest.check_raises "equal positions rejected"
    (Invalid_argument "Layout_eval.Delta.apply_swap: positions are equal (1)") (fun () ->
      ignore (Delta.apply_swap sess 1 1));
  Alcotest.check_raises "out-of-range position rejected"
    (Invalid_argument
       (Printf.sprintf "Layout_eval.Delta.apply_relocate: position %d out of [0,%d)" nf nf))
    (fun () -> ignore (Delta.apply_relocate sess nf 0));
  (* A rejected proposal must not poison the session. *)
  let order = Delta.order sess in
  check_bit_equal "session survives rejections"
    (Layout_eval.miss_ratio_of_order engine order)
    (Delta.miss_ratio sess)

(* ------------------------------------------- Anneal mode equivalence *)

let test_anneal_mode_equivalence () =
  let program = program_of ~seed:41 ~style:W.Gen.default_profile.W.Gen.style in
  let trace = trace_of program in
  let params = C.Params.make ~size_bytes:1024 ~assoc:2 ~line_bytes:64 in
  List.iter
    (fun max_span ->
      let run mode = Anneal.search ~seed:17 ~steps:120 ?max_span ~resync_interval:16 ~mode ~params program trace in
      let d = run `Delta and f = run `Full in
      check (Alcotest.array Alcotest.int)
        (Printf.sprintf "same order (max_span=%s)"
           (match max_span with None -> "none" | Some s -> string_of_int s))
        f.Anneal.order d.Anneal.order;
      check_bit_equal "same ratio" f.Anneal.miss_ratio d.Anneal.miss_ratio;
      check_bit_equal "same start" f.Anneal.improved_from d.Anneal.improved_from;
      (* And the delta result still replays through the seed evaluator. *)
      check_bit_equal "delta result = Kernel_baseline"
        (Kernel_baseline.miss_ratio_of_function_order ~params program trace d.Anneal.order)
        d.Anneal.miss_ratio)
    [ None; Some 2 ]

let test_search_batch_delta_matches_pooled () =
  let program = program_of ~seed:41 ~style:W.Gen.default_profile.W.Gen.style in
  let trace = trace_of program in
  let params = C.Params.make ~size_bytes:1024 ~assoc:2 ~line_bytes:64 in
  let run ~jobs =
    U.Pool.with_pool ~jobs (fun pool ->
        let engine = Layout_eval.create ~pool ~params program trace in
        Anneal.search_batch ~seed:8 ~steps:12 ~width:6 ~max_span:3 engine)
  in
  (* jobs=1 takes the delta apply/undo path, jobs=4 the pooled eval_batch
     path; the results must be byte-identical. *)
  let r1 = run ~jobs:1 in
  let r4 = run ~jobs:4 in
  check (Alcotest.array Alcotest.int) "same order at jobs 1 and 4" r1.Anneal.order r4.Anneal.order;
  check_bit_equal "same ratio at jobs 1 and 4" r1.Anneal.miss_ratio r4.Anneal.miss_ratio;
  check Alcotest.int "simulations reported" (1 + (12 * 6)) r1.Anneal.steps

(* ------------------------------------------------- degenerate inputs *)

let single_func_program () =
  let open Colayout_ir in
  let b = Builder.create ~name:"one-func" () in
  let f = Builder.func b "main" in
  let entry = Builder.block b f "entry" in
  let loop = Builder.block b f "loop" in
  let done_ = Builder.block b f "done" in
  Builder.set_body b entry [ Types.Assign (0, Types.Const 0) ] (Types.Jump loop);
  Builder.set_body b loop
    [ Types.Work 8; Types.Assign (0, Types.Bin (Types.Add, Types.Var 0, Types.Const 1)) ]
    (Types.Branch
       {
         cond = Types.Bin (Types.Lt, Types.Var 0, Types.Const 5);
         if_true = loop;
         if_false = done_;
       });
  Builder.set_body b done_ [] Types.Halt;
  Builder.set_main b f;
  Builder.finish b

let test_anneal_degenerate_single_function () =
  let program = single_func_program () in
  let trace = Pipeline.reference_trace program (E.Interp.ref_input ~max_blocks:200 ()) in
  let params = List.hd geometries in
  (* Must return immediately (no b <> a redraw spin) with the trivial
     order, in both searches and both modes. *)
  List.iter
    (fun mode ->
      let r = Anneal.search ~seed:3 ~steps:50 ~mode ~params program trace in
      check (Alcotest.array Alcotest.int) "trivial order" [| 0 |] r.Anneal.order;
      check_bit_equal "miss ratio = initial" r.Anneal.improved_from r.Anneal.miss_ratio;
      check Alcotest.int "steps reported" 50 r.Anneal.steps)
    [ `Delta; `Full ];
  let engine = Layout_eval.create ~params program trace in
  let r = Anneal.search_batch ~seed:3 ~steps:40 ~width:4 engine in
  check (Alcotest.array Alcotest.int) "batch trivial order" [| 0 |] r.Anneal.order;
  check_bit_equal "batch miss ratio = initial" r.Anneal.improved_from r.Anneal.miss_ratio;
  (* A delta session on the degenerate universe works too (no moves are
     possible, but start/miss_ratio must agree with the full path). *)
  let sess = Delta.start engine [| 0 |] in
  check_bit_equal "degenerate session = full eval"
    (Layout_eval.miss_ratio_of_order engine [| 0 |])
    (Delta.miss_ratio sess)

let () =
  Alcotest.run "layout_eval_delta"
    [
      ( "property",
        [
          Alcotest.test_case "10k+ move sequences across geometries" `Slow test_property_drive;
          Alcotest.test_case "dispatch trace, tight resync" `Slow test_property_drive_dispatch;
        ] );
      ( "discipline",
        [ Alcotest.test_case "undo/commit/pending rules" `Quick test_move_api_discipline ] );
      ( "anneal",
        [
          Alcotest.test_case "mode equivalence (delta = full)" `Quick test_anneal_mode_equivalence;
          Alcotest.test_case "search_batch delta = pooled" `Quick
            test_search_batch_delta_matches_pooled;
          Alcotest.test_case "degenerate single-function guard" `Quick
            test_anneal_degenerate_single_function;
        ] );
    ]
