(* Benchmark harness.

   Part 0 — kernel micro-benchmarks with a machine-readable trajectory:
   the packed-int/CSR analysis kernels (Trg.build, Affinity.affine_pairs,
   Trg_reduce.reduce) are timed against the seed tuple-Hashtbl baselines
   (Kernel_baseline) on the same trace, the TRG memory footprints are
   compared, and the results are written to BENCH_kernels.json. Part 1 —
   Bechamel micro-benchmarks: one group per paper artifact, timing the
   analysis/simulation kernel that regenerates it, plus the §II-F data
   structures. Part 2 — printed ablation studies for the design choices
   DESIGN.md calls out (affinity w-range, trace pruning, TRG window scale).
   Part 3 — the full experiment suite: every table and figure of the paper,
   regenerated at full scale (this is the output EXPERIMENTS.md quotes).

   Run with:
     dune exec bench/main.exe                      # everything
     dune exec bench/main.exe -- --kernels-only    # part 0 at full size
     dune exec bench/main.exe -- --quick           # part 0, small (CI smoke)
   The JSON path defaults to BENCH_kernels.json; override with --json. *)

open Bechamel
open Colayout
module W = Colayout_workloads
module E = Colayout_exec
module C = Colayout_cache
module U = Colayout_util
module H = Colayout_harness
module T = Colayout_trace

let params = C.Params.default_l1i

(* Single source for the recorded host width. Every BENCH_*.json manifest
   carries this field and the smoke checkers gate their magnitude
   assertions on it, so all of them must read the same value. *)
let cores_available () = Domain.recommended_domain_count ()

let cores_field () = ("cores_available", U.Json.Int (cores_available ()))

(* Standard provenance block every manifest carries: how long this bench
   part ran, what the GC did getting there, and the host width — so a
   committed manifest says under what conditions its numbers were taken.
   Call with the clock value captured at the part's entry. *)
let runtime_field t0 =
  let s = Gc.quick_stat () in
  ( "runtime",
    U.Json.Obj
      [
        ("wall_ns", U.Json.Int (Int64.to_int (Int64.sub (U.Metrics.default_clock ()) t0)));
        ("minor_words", U.Json.Float s.Gc.minor_words);
        ("major_words", U.Json.Float s.Gc.major_words);
        ("compactions", U.Json.Int s.Gc.compactions);
        cores_field ();
      ] )

(* Shared inputs for parts 1-3, prepared once — lazily, so the kernel-only
   modes never pay for the workload build and interpreter runs. *)
let shared =
  lazy
    (let program = W.Spec.build "445.gobmk" in
     let test_run = E.Interp.run program (E.Interp.test_input ~max_blocks:30_000 ()) in
     let analysis =
       Optimizer.analysis_of_traces ~bb:test_run.E.Interp.bb_trace
         ~fn:test_run.E.Interp.fn_trace ()
     in
     let ref_trace = Pipeline.reference_trace program (E.Interp.ref_input ~max_blocks:60_000 ()) in
     let original = Layout.original program in
     let optimized = Optimizer.layout_for Optimizer.Bb_affinity program analysis in
     (program, test_run, analysis, ref_trace, original, optimized))

(* ------------------------------------------------------------- Part 0 *)

(* A skewed-popularity trace with enough deep reuse to stress the w ≈ 512
   window (32 KB / 64 B line): zipf-ranked symbols, seeded PRNG, trimmed. *)
let kernel_trace ~num_symbols ~len ~seed =
  let prng = U.Prng.create ~seed in
  let t = T.Trace.create ~name:"bench-kernels" ~num_symbols () in
  for _ = 1 to len do
    T.Trace.push t (U.Prng.zipf prng ~n:num_symbols ~s:0.9)
  done;
  T.Trim.trim t

(* Wall-time a thunk: warm once, then double the iteration count until the
   measured batch exceeds [budget] seconds. The kernels are deterministic
   and long-running (1e5..1e9 ns), so this is stable without OLS. *)
let time_ns ~budget f =
  f ();
  let rec go iters =
    let t0 = Sys.time () in
    for _ = 1 to iters do
      f ()
    done;
    let dt = Sys.time () -. t0 in
    if dt >= budget then dt *. 1e9 /. float_of_int iters else go (iters * 2)
  in
  go 1

let json_escape s =
  String.concat "" (List.map (fun c -> if c = '"' || c = '\\' then "\\" ^ String.make 1 c else String.make 1 c)
       (List.init (String.length s) (String.get s)))

let write_kernels_json ~path ~mode ~t0 ~num_symbols ~trace_len ~w ~slots ~kernels ~speedups
    ~packed_words ~legacy_words =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"schema\": \"colayout/bench-kernels/v1\",\n";
  out "  \"runtime\": %s,\n" (U.Json.to_string (snd (runtime_field t0)));
  out "  \"mode\": \"%s\",\n" (json_escape mode);
  out "  \"params\": { \"num_symbols\": %d, \"trace_len\": %d, \"w\": %d, \"window\": %d, \"slots\": %d },\n"
    num_symbols trace_len w w slots;
  out "  \"kernels\": [\n";
  List.iteri
    (fun i (name, ns) ->
      out "    { \"name\": \"%s\", \"ns_per_op\": %.1f }%s\n" (json_escape name) ns
        (if i = List.length kernels - 1 then "" else ","))
    kernels;
  out "  ],\n";
  out "  \"speedup\": {\n";
  List.iteri
    (fun i (name, s) ->
      out "    \"%s\": %.3f%s\n" (json_escape name) s
        (if i = List.length speedups - 1 then "" else ","))
    speedups;
  out "  },\n";
  out "  \"memory_words\": { \"trg_packed_csr\": %d, \"trg_tuple_hashtbl\": %d, \"ratio\": %.3f }\n"
    packed_words legacy_words
    (float_of_int packed_words /. float_of_int legacy_words);
  out "}\n";
  close_out oc

let run_kernels ~quick ~json_path =
  let t0 = U.Metrics.default_clock () in
  let num_symbols = if quick then 1024 else 4096 in
  let len = if quick then 12_000 else 120_000 in
  let w = 512 in
  let slots = 256 in
  let budget = if quick then 0.1 else 1.0 in
  let trace = kernel_trace ~num_symbols ~len ~seed:0xC0DE in
  Printf.printf
    "== Kernel micro-benchmarks: packed-int/CSR vs seed tuple-Hashtbl ==\n\
    \   (%d events over %d symbols, w = window = %d, slots = %d)\n%!"
    (T.Trace.length trace) num_symbols w slots;
  let bench name f =
    let ns = time_ns ~budget f in
    Printf.printf "  %-40s %12.1f us/run\n%!" name (ns /. 1e3);
    (name, ns)
  in
  let trg_packed = bench "trg-build/packed-csr" (fun () -> ignore (Trg.build ~window:w trace)) in
  let trg_legacy =
    bench "trg-build/tuple-hashtbl-baseline" (fun () ->
        ignore (Kernel_baseline.trg_build ~window:w trace))
  in
  let aff_packed = bench "affine-pairs/packed" (fun () -> ignore (Affinity.affine_pairs trace ~w)) in
  let aff_legacy =
    bench "affine-pairs/tuple-hashtbl-baseline" (fun () ->
        ignore (Kernel_baseline.affine_pairs trace ~w))
  in
  let trg = Trg.build ~window:w trace in
  let reduce = bench "trg-reduce/csr-heap" (fun () -> ignore (Trg_reduce.reduce trg ~slots)) in
  let kernels = [ trg_packed; trg_legacy; aff_packed; aff_legacy; reduce ] in
  let speedups =
    [
      ("trg-build", snd trg_legacy /. snd trg_packed);
      ("affine-pairs", snd aff_legacy /. snd aff_packed);
    ]
  in
  List.iter (fun (n, s) -> Printf.printf "  speedup %-32s %12.2fx\n%!" n s) speedups;
  (* Memory-footprint ablation: the CSR stores each undirected edge once;
     the seed adjacency stores it twice, in boxed hash-table cells. *)
  let legacy = Kernel_baseline.trg_build ~window:w trace in
  let packed_words = Obj.reachable_words (Obj.repr trg) in
  let legacy_words = Obj.reachable_words (Obj.repr legacy) in
  Printf.printf "  TRG resident memory: packed CSR %d words, tuple-hashtbl %d words (%.1f%%)\n%!"
    packed_words legacy_words
    (100.0 *. float_of_int packed_words /. float_of_int legacy_words);
  if 2 * packed_words > legacy_words then begin
    Printf.eprintf
      "FATAL: CSR finalization no longer halves TRG resident memory (%d vs %d words)\n%!"
      packed_words legacy_words;
    exit 1
  end;
  write_kernels_json ~path:json_path
    ~mode:(if quick then "quick" else "full")
    ~t0 ~num_symbols ~trace_len:(T.Trace.length trace) ~w ~slots ~kernels ~speedups
    ~packed_words ~legacy_words;
  Printf.printf "  wrote %s\n\n%!" json_path

(* ----------------------------------------------------------- Part 0.5 *)

(* End-to-end pipeline stage-timing manifest (BENCH_harness.json, schema
   colayout/bench-harness/v1): one Fast-scale pass through the Ctx seam —
   workload build, reference interpretation, analysis, layout, solo and
   co-run simulation — recorded as spans and aggregated per stage and per
   category. This extends the machine-readable perf trajectory beyond the
   two §II-F kernels of BENCH_kernels.json to the whole harness. *)

let harness_program = "445.gobmk"

let harness_probe = "403.gcc"

let run_harness_manifest ~quick ~path =
  let t0 = U.Metrics.default_clock () in
  Printf.printf "== Harness stage timings (end-to-end pipeline, fast scale) ==\n%!";
  let ctx = H.Ctx.create ~scale:H.Ctx.Fast () in
  let spans = H.Ctx.spans ctx in
  ignore (H.Ctx.solo_stats ctx ~hw:false harness_program Optimizer.Bb_affinity);
  ignore (H.Ctx.solo_stats ctx ~hw:false harness_program Optimizer.Original);
  ignore
    (H.Ctx.corun_stats ctx ~hw:false
       ~self:(harness_program, Optimizer.Bb_affinity)
       ~peer:(harness_probe, Optimizer.Original));
  let stages =
    List.map
      (fun (cat, name, calls, total_ns) ->
        U.Json.Obj
          [
            ("name", U.Json.Str name);
            ("cat", U.Json.Str cat);
            ("calls", U.Json.Int calls);
            ("total_ns", U.Json.Int (Int64.to_int total_ns));
          ])
      (U.Span.aggregate spans)
  in
  let totals =
    List.map
      (fun (cat, total_ns) -> (cat, U.Json.Int (Int64.to_int total_ns)))
      (U.Span.by_category spans)
  in
  let counters =
    List.map (fun (k, v) -> (k, U.Json.Int v)) (U.Metrics.counters (H.Ctx.metrics ctx))
  in
  let manifest =
    U.Json.Obj
      [
        ("schema", U.Json.Str "colayout/bench-harness/v1");
        ("mode", U.Json.Str (if quick then "quick" else "full"));
        ("scale", U.Json.Str "fast");
        ("program", U.Json.Str harness_program);
        ("probe", U.Json.Str harness_probe);
        ("stages", U.Json.Arr stages);
        ("category_totals_ns", U.Json.Obj totals);
        ("counters", U.Json.Obj counters);
        runtime_field t0;
      ]
  in
  let oc = open_out path in
  output_string oc (U.Json.to_string ~pretty:true manifest);
  output_char oc '\n';
  close_out oc;
  List.iter
    (fun (cat, total_ns) ->
      match total_ns with
      | U.Json.Int ns -> Printf.printf "  %-12s %12.2f ms\n%!" cat (float_of_int ns /. 1e6)
      | _ -> ())
    totals;
  (* Self-validation, relied on by @bench-smoke: the manifest must parse
     and every recorded stage duration must be non-negative. *)
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (match U.Json.parse text with
  | json ->
    let check_stage s =
      match U.Json.(Option.bind (member "total_ns" s) to_int) with
      | Some ns when ns >= 0 -> ()
      | _ ->
        Printf.eprintf "FATAL: %s has a stage with a negative or missing duration\n%!" path;
        exit 1
    in
    (match U.Json.(Option.bind (member "stages" json) to_list) with
    | Some (_ :: _ as stages) -> List.iter check_stage stages
    | _ ->
      Printf.eprintf "FATAL: %s has no stages\n%!" path;
      exit 1)
  | exception U.Json.Parse_error (pos, msg) ->
    Printf.eprintf "FATAL: %s does not parse: %s at %d\n%!" path msg pos;
    exit 1);
  Printf.printf "  wrote %s\n\n%!" path

(* ---------------------------------------------------------- Part 0.75 *)

(* Parallel-scaling benchmark (BENCH_parallel.json, schema
   colayout/bench-parallel/v1): the Figure 6 co-run speedup matrix —
   phase-1 prewarm plus the (kind x self x probe) simulation fan-out — is
   re-run from a fresh Fast-scale context at jobs ∈ {1, 2, 4}, wall-clock
   timed, and digest-checked: every jobs count must produce bit-identical
   cell values (the determinism contract of the pool). Quick mode shrinks
   the matrix (1 optimizer, 3 programs) but exercises the same schedule. *)

let parallel_jobs = [ 1; 2; 4 ]

let run_parallel_matrix ~kinds ~selves ~probes ~jobs =
  let t0 = U.Metrics.default_clock () in
  let metrics = U.Metrics.create () in
  let cells =
    List.concat_map
      (fun kind ->
        List.concat_map (fun s -> List.map (fun p -> (kind, s, p)) probes) selves)
      kinds
  in
  let values =
    U.Pool.with_pool ~jobs ~metrics (fun pool ->
        let ctx = H.Ctx.create ~scale:H.Ctx.Fast ~metrics ~pool () in
        H.Ctx.prewarm ctx ~kinds:(Optimizer.Original :: kinds) selves;
        H.Ctx.par_map ctx
          (fun (kind, self, probe) -> H.Exp_fig6.speedup ctx kind ~self ~probe)
          cells)
  in
  let wall_ns = Int64.to_int (Int64.sub (U.Metrics.default_clock ()) t0) in
  let digest =
    Digest.to_hex
      (Digest.string (String.concat ";" (List.map (Printf.sprintf "%.12g") values)))
  in
  (wall_ns, digest, List.length cells)

let run_parallel_bench ~quick ~path =
  let t_start = U.Metrics.default_clock () in
  Printf.printf "== Parallel scaling: fig6 co-run matrix under the domain pool ==\n%!";
  let kinds = if quick then [ Optimizer.Func_affinity ] else H.Exp_fig6.optimizers in
  let selves =
    if quick then [ "400.perlbench"; "429.mcf"; "458.sjeng" ] else W.Spec.deep_eight
  in
  let probes = if quick then selves else W.Spec.deep_eight in
  let runs =
    List.map
      (fun jobs ->
        let wall_ns, digest, cells = run_parallel_matrix ~kinds ~selves ~probes ~jobs in
        Printf.printf "  jobs=%d  %8.2f s  (%d cells, digest %s)\n%!" jobs
          (float_of_int wall_ns /. 1e9)
          cells
          (String.sub digest 0 12);
        (jobs, wall_ns, digest))
      parallel_jobs
  in
  let digests = List.map (fun (_, _, d) -> d) runs in
  let identical = List.for_all (fun d -> d = List.hd digests) digests in
  if not identical then begin
    Printf.eprintf "FATAL: fig6 matrix differs across jobs counts — determinism broken\n%!";
    exit 1
  end;
  let base_wall =
    match runs with (1, w, _) :: _ -> float_of_int w | _ -> assert false
  in
  let speedups =
    List.filter_map
      (fun (jobs, w, _) ->
        if jobs = 1 then None
        else Some (Printf.sprintf "jobs%d" jobs, U.Json.Float (base_wall /. float_of_int w)))
      runs
  in
  List.iter
    (fun (name, v) ->
      match v with
      | U.Json.Float s -> Printf.printf "  speedup %-8s %6.2fx\n%!" name s
      | _ -> ())
    speedups;
  let manifest =
    U.Json.Obj
      [
        ("schema", U.Json.Str "colayout/bench-parallel/v1");
        ("mode", U.Json.Str (if quick then "quick" else "full"));
        ("scale", U.Json.Str "fast");
        ("matrix", U.Json.Str "fig6");
        ("kinds", U.Json.Int (List.length kinds));
        ("selves", U.Json.Int (List.length selves));
        ("probes", U.Json.Int (List.length probes));
        cores_field ();
        ( "runs",
          U.Json.Arr
            (List.map
               (fun (jobs, wall_ns, digest) ->
                 U.Json.Obj
                   [
                     ("jobs", U.Json.Int jobs);
                     ("wall_ns", U.Json.Int wall_ns);
                     ("digest", U.Json.Str digest);
                   ])
               runs) );
        ("identical_tables", U.Json.Bool identical);
        ("speedup", U.Json.Obj speedups);
        runtime_field t_start;
      ]
  in
  let oc = open_out path in
  output_string oc (U.Json.to_string ~pretty:true manifest);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n\n%!" path

(* ----------------------------------------------------------- Part 0.9 *)

(* Cache-profile manifest (BENCH_profile.json, schema
   colayout/bench-profile/v1): Fast-scale profiled solo runs of the
   original vs optimized layout on two workloads, recording the
   cold/capacity/conflict split of each. The claim the paper's layouts rest
   on — optimization moves misses out of the conflict class — is asserted
   here: at least one workload must show a strict conflict-miss drop, or
   the bench fails. The @bench-smoke checker re-validates the written
   manifest. *)

let profile_workloads =
  [ ("445.gobmk", Optimizer.Bb_affinity); ("403.gcc", Optimizer.Bb_affinity) ]

let classification_json sink =
  U.Json.Obj
    [
      ("accesses", U.Json.Int (C.Profile_sink.accesses sink));
      ("misses", U.Json.Int (C.Profile_sink.misses sink));
      ("cold", U.Json.Int (C.Profile_sink.cold_misses sink));
      ("capacity", U.Json.Int (C.Profile_sink.capacity_misses sink));
      ("conflict", U.Json.Int (C.Profile_sink.conflict_misses sink));
      ("evictions", U.Json.Int (C.Profile_sink.evictions sink));
    ]

let run_profile_manifest ~quick ~path =
  let t0 = U.Metrics.default_clock () in
  Printf.printf "== Cache-profile manifest: conflict-miss reduction by layout ==\n%!";
  let workloads =
    if quick then [ List.hd profile_workloads ] else profile_workloads
  in
  let ctx = H.Ctx.create ~scale:H.Ctx.Fast () in
  let rows =
    List.map
      (fun (name, kind) ->
        let _, base = H.Ctx.profiled_solo ctx ~hw:false name Optimizer.Original in
        let _, opt = H.Ctx.profiled_solo ctx ~hw:false name kind in
        let drop = C.Profile_sink.conflict_misses base - C.Profile_sink.conflict_misses opt in
        Printf.printf "  %-14s %-12s conflict %6d -> %6d  (drop %d)\n%!" name
          (Optimizer.kind_name kind)
          (C.Profile_sink.conflict_misses base)
          (C.Profile_sink.conflict_misses opt)
          drop;
        (name, kind, base, opt, drop))
      workloads
  in
  let any_drop = List.exists (fun (_, _, _, _, d) -> d > 0) rows in
  if not any_drop then begin
    Printf.eprintf
      "FATAL: no workload showed a conflict-miss reduction — the layouts no longer kill \
       conflict misses\n%!";
    exit 1
  end;
  let manifest =
    U.Json.Obj
      [
        ("schema", U.Json.Str "colayout/bench-profile/v1");
        ("mode", U.Json.Str (if quick then "quick" else "full"));
        ("scale", U.Json.Str "fast");
        ( "workloads",
          U.Json.Arr
            (List.map
               (fun (name, kind, base, opt, drop) ->
                 U.Json.Obj
                   [
                     ("program", U.Json.Str name);
                     ("optimizer", U.Json.Str (Optimizer.kind_name kind));
                     ("baseline", classification_json base);
                     ("optimized", classification_json opt);
                     ("conflict_drop", U.Json.Int drop);
                   ])
               rows) );
        ("any_conflict_drop", U.Json.Bool any_drop);
        runtime_field t0;
      ]
  in
  let oc = open_out path in
  output_string oc (U.Json.to_string ~pretty:true manifest);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n\n%!" path

(* ---------------------------------------------------------- Part 0.95 *)

(* Layout-evaluation engine benchmark (BENCH_layout_eval.json, schema
   colayout/bench-layout-eval/v1): the PR-5 zero-allocation engine vs the
   seed evaluate-one-candidate path (Kernel_baseline), on the annealing
   workload shape — one engine, many candidate function orders. Three
   measurements: (a) single-thread ns per candidate, engine vs seed, over
   a fixed shuffled-order set; (b) the annealing search wall-clock before
   (seed loop) and after (engine-backed); (c) eval_batch wall at
   jobs ∈ {1, 2, 4}, digest-checked for bit-identical results. Full mode
   FATALs if the single-thread speedup falls under 5x — the tentpole
   claim; quick mode only requires positive timings (CI boxes are noisy
   and may be single-core). *)

let layout_eval_profile =
  {
    W.Gen.default_profile with
    pname = "bench-layout-eval";
    seed = 2014;
    phases = 3;
    funcs_per_phase = 3;
    shared_funcs = 1;
    arms = 4;
    arm_blocks = 3;
    arm_work = 40;
    cold_funcs = 1;
    iters_per_phase = 60;
  }

let layout_eval_params = C.Params.make ~size_bytes:2048 ~assoc:2 ~line_bytes:64

let run_layout_eval_bench ~quick ~path =
  let t_start = U.Metrics.default_clock () in
  Printf.printf "== Layout-evaluation engine: zero-allocation scoring vs seed path ==\n%!";
  let params = layout_eval_params in
  let program = W.Gen.build layout_eval_profile in
  let nf = Colayout_ir.Program.num_funcs program in
  let max_blocks = if quick then 8_000 else 40_000 in
  let trace = Pipeline.reference_trace program (E.Interp.ref_input ~max_blocks ()) in
  Printf.printf "   (%d functions, %d-event trace, %s)\n%!" nf (T.Trace.length trace)
    (C.Params.to_string params);
  let prng = U.Prng.create ~seed:7 in
  let shuffled () =
    let a = Array.init nf Fun.id in
    U.Prng.shuffle prng a;
    a
  in
  let orders = Array.init 32 (fun _ -> shuffled ()) in
  let budget = if quick then 0.05 else 0.5 in
  (* (a) single-thread per-candidate cost. One engine reused across all
     candidates — the usage pattern every search loop has. *)
  let engine = Layout_eval.create ~params program trace in
  let n = float_of_int (Array.length orders) in
  let engine_ns =
    time_ns ~budget (fun () ->
        Array.iter (fun o -> ignore (Layout_eval.miss_ratio_of_order engine o)) orders)
    /. n
  in
  let seed_ns =
    time_ns ~budget (fun () ->
        Array.iter
          (fun o ->
            ignore (Kernel_baseline.miss_ratio_of_function_order ~params program trace o))
          orders)
    /. n
  in
  let st_speedup = seed_ns /. engine_ns in
  Printf.printf "  %-40s %12.1f us/candidate\n%!" "engine (Layout_eval)" (engine_ns /. 1e3);
  Printf.printf "  %-40s %12.1f us/candidate\n%!" "seed path (Kernel_baseline)" (seed_ns /. 1e3);
  Printf.printf "  speedup %-32s %12.2fx\n%!" "single-thread" st_speedup;
  (* Differential spot-check on the exact bench inputs: a fast-but-wrong
     engine must not publish a manifest. *)
  Array.iter
    (fun o ->
      let got = Layout_eval.miss_ratio_of_order engine o in
      let want = Kernel_baseline.miss_ratio_of_function_order ~params program trace o in
      if got <> want then begin
        Printf.eprintf "FATAL: engine diverges from the seed evaluator (%.17g vs %.17g)\n%!"
          got want;
        exit 1
      end)
    orders;
  (* (b) annealing wall-clock, before vs after. The two searches draw
     slightly different PRNG streams (the seed loop burns steps on a = b
     proposals), so only wall and final quality are compared. *)
  let wall f =
    let t0 = U.Metrics.default_clock () in
    let r = f () in
    (r, Int64.to_int (Int64.sub (U.Metrics.default_clock ()) t0))
  in
  let steps = if quick then 100 else 400 in
  let (_, before_mr, _), before_ns =
    wall (fun () -> Kernel_baseline.anneal_search ~seed:11 ~steps ~params program trace)
  in
  let after_r, after_ns = wall (fun () -> Anneal.search ~seed:11 ~steps ~params program trace) in
  let anneal_speedup = float_of_int before_ns /. float_of_int after_ns in
  Printf.printf "  anneal %d steps: seed %.2f ms -> engine %.2f ms (%.2fx), miss %.4f -> %.4f\n%!"
    steps
    (float_of_int before_ns /. 1e6)
    (float_of_int after_ns /. 1e6)
    anneal_speedup before_mr after_r.Anneal.miss_ratio;
  (* (c) batch fan-out at jobs ∈ {1, 2, 4}: digest-checked determinism. *)
  let batch = Array.init (if quick then 32 else 128) (fun _ -> shuffled ()) in
  let batch_runs =
    List.map
      (fun jobs ->
        let results, ns =
          wall (fun () ->
              U.Pool.with_pool ~jobs (fun pool ->
                  let e = Layout_eval.create ~pool ~params program trace in
                  Layout_eval.eval_batch e batch))
        in
        let digest =
          Digest.to_hex
            (Digest.string
               (String.concat ";"
                  (Array.to_list (Array.map (Printf.sprintf "%.17g") results))))
        in
        Printf.printf "  batch %d candidates, jobs=%d  %8.2f ms  (digest %s)\n%!"
          (Array.length batch) jobs
          (float_of_int ns /. 1e6)
          (String.sub digest 0 12);
        (jobs, ns, digest))
      parallel_jobs
  in
  let digests = List.map (fun (_, _, d) -> d) batch_runs in
  if not (List.for_all (fun d -> d = List.hd digests) digests) then begin
    Printf.eprintf "FATAL: eval_batch results differ across jobs counts — determinism broken\n%!";
    exit 1
  end;
  if engine_ns <= 0.0 || seed_ns <= 0.0 then begin
    Printf.eprintf "FATAL: non-positive timing\n%!";
    exit 1
  end;
  if (not quick) && st_speedup < 5.0 then begin
    Printf.eprintf
      "FATAL: single-thread engine speedup %.2fx < 5x over the seed evaluator — the \
       zero-allocation engine has regressed\n%!"
      st_speedup;
    exit 1
  end;
  let manifest =
    U.Json.Obj
      [
        ("schema", U.Json.Str "colayout/bench-layout-eval/v1");
        ("mode", U.Json.Str (if quick then "quick" else "full"));
        ( "params",
          U.Json.Obj
            [
              ("program", U.Json.Str (Colayout_ir.Program.name program));
              ("num_funcs", U.Json.Int nf);
              ("trace_len", U.Json.Int (T.Trace.length trace));
              ("cache", U.Json.Str (C.Params.to_string params));
              ("orders", U.Json.Int (Array.length orders));
              ("anneal_steps", U.Json.Int steps);
              ("batch_candidates", U.Json.Int (Array.length batch));
            ] );
        cores_field ();
        ( "single_thread",
          U.Json.Obj
            [
              ("engine_ns_per_eval", U.Json.Float engine_ns);
              ("seed_ns_per_eval", U.Json.Float seed_ns);
              ("speedup", U.Json.Float st_speedup);
            ] );
        ( "anneal",
          U.Json.Obj
            [
              ("seed_wall_ns", U.Json.Int before_ns);
              ("engine_wall_ns", U.Json.Int after_ns);
              ("speedup", U.Json.Float anneal_speedup);
              ("seed_miss_ratio", U.Json.Float before_mr);
              ("engine_miss_ratio", U.Json.Float after_r.Anneal.miss_ratio);
            ] );
        ( "batch",
          U.Json.Arr
            (List.map
               (fun (jobs, ns, digest) ->
                 U.Json.Obj
                   [
                     ("jobs", U.Json.Int jobs);
                     ("wall_ns", U.Json.Int ns);
                     ("digest", U.Json.Str digest);
                   ])
               batch_runs) );
        ("identical_batches", U.Json.Bool true);
        runtime_field t_start;
      ]
  in
  let oc = open_out path in
  output_string oc (U.Json.to_string ~pretty:true manifest);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n\n%!" path

(* ---------------------------------------------------------- Part 0.96 *)

(* Delta (incremental) evaluation benchmark (BENCH_layout_eval_delta.json,
   schema colayout/bench-layout-eval-delta/v1): the PR-6 dirty-set
   re-simulation path vs full recompute, on the move pattern annealing
   actually produces. Two measurements:

   (a) a dirty-% sweep — four move-locality scenarios (nominal 1% / 5% /
       25% / 100% dirty sets), each replaying the IDENTICAL move sequence
       down both paths: a [Layout_eval.Delta] session (all moves
       committed, periodic resync audits included in the wall) and a
       per-move full [miss_ratio_of_order]. The per-move ratio streams are
       digest-compared — a fast-but-wrong delta path must not publish a
       manifest. Measured dirty-% and replayed-event fractions come from
       [Delta.stats], not the nominal labels.

   (b) the 400-step anneal wall, [Anneal.search ~max_span:2] (the local
       refinement regime) in [`Full] vs [`Delta] mode. Both modes draw the
       same PRNG stream, so the results must be byte-identical — checked,
       then the walls compared. Full mode FATALs below 3x; the committed
       manifest is expected to clear 5x (ISSUE acceptance).

   The program is many small functions under a 1024-set cache — the
   shape delta evaluation exists for: a local move perturbs a few hundred
   bytes of address space, so only a handful of sets go dirty and the
   replayed-event fraction stays in the low single digits. *)

let layout_eval_delta_profile =
  {
    W.Gen.default_profile with
    pname = "bench-layout-eval-delta";
    seed = 2014;
    phases = 16;
    funcs_per_phase = 8;
    shared_funcs = 2;
    arms = 2;
    arm_blocks = 1;
    arm_work = 12;
    cold_funcs = 6;
    iters_per_phase = 40;
  }

let layout_eval_delta_params = C.Params.make ~size_bytes:131_072 ~assoc:2 ~line_bytes:64

let run_layout_eval_delta_bench ~quick ~path =
  let t_start = U.Metrics.default_clock () in
  Printf.printf "== Delta evaluation: dirty-set re-simulation vs full recompute ==\n%!";
  let params = layout_eval_delta_params in
  let program = W.Gen.build layout_eval_delta_profile in
  let nf = Colayout_ir.Program.num_funcs program in
  let max_blocks = if quick then 8_000 else 40_000 in
  let trace = Pipeline.reference_trace program (E.Interp.ref_input ~max_blocks ()) in
  let trace_len = T.Trace.length trace in
  Printf.printf "   (%d functions, %d-event trace, %s)\n%!" nf trace_len
    (C.Params.to_string params);
  let wall f =
    let t0 = U.Metrics.default_clock () in
    let r = f () in
    (r, Int64.to_int (Int64.sub (U.Metrics.default_clock ()) t0))
  in
  let engine = Layout_eval.create ~params program trace in
  let digest_of ratios =
    Digest.to_hex
      (Digest.string
         (String.concat ";" (Array.to_list (Array.map (Printf.sprintf "%.17g") ratios))))
  in
  (* (a) dirty-% sweep. Each scenario is a move-locality rule; the drawn
     sequence is materialized up front so both paths replay byte-identical
     moves. *)
  let moves = if quick then 150 else 600 in
  let scenarios =
    (* (label, nominal dirty-%, draw rule). [span] limits |a - b|;
       [far_relocate] forces end-to-end relocations, which shift every
       function between the endpoints and dirty (essentially) every set. *)
    [
      ("local-swap", 1, `Span 1);
      ("near", 5, `Span 3);
      ("mid", 25, `Span (max 2 (nf / 5)));
      ("global", 100, `Far);
    ]
  in
  let scenario_rows =
    List.map
      (fun (label, nominal_pct, rule) ->
        let prng = U.Prng.create ~seed:(19 + nominal_pct) in
        let mv_a = Array.make moves 0 and mv_b = Array.make moves 0 in
        let mv_swap = Array.make moves false in
        for i = 0 to moves - 1 do
          (match rule with
          | `Span span ->
            let a = U.Prng.int prng nf in
            let lo = max 0 (a - span) and hi = min (nf - 1) (a + span) in
            let b = ref (U.Prng.int_in prng ~lo ~hi) in
            while !b = a do
              b := U.Prng.int_in prng ~lo ~hi
            done;
            mv_a.(i) <- a;
            mv_b.(i) <- !b;
            mv_swap.(i) <- U.Prng.bool prng ~p:0.5
          | `Far ->
            (* Relocate between the two ends: everything in between
               shifts, so the whole footprint is dirty. *)
            let head = U.Prng.int prng (max 1 (nf / 16)) in
            let tail = nf - 1 - U.Prng.int prng (max 1 (nf / 16)) in
            let fwd = U.Prng.bool prng ~p:0.5 in
            mv_a.(i) <- (if fwd then head else tail);
            mv_b.(i) <- (if fwd then tail else head);
            mv_swap.(i) <- false);
        done;
        (* Delta path: one session, every move committed (resync audits at
           the default cadence are part of the measured wall). *)
        let (delta_ratios, delta_stats), delta_ns =
          wall (fun () ->
              let sess = Layout_eval.Delta.start engine (Array.init nf Fun.id) in
              let ratios =
                Array.init moves (fun i ->
                    let mr =
                      if mv_swap.(i) then Layout_eval.Delta.apply_swap sess mv_a.(i) mv_b.(i)
                      else Layout_eval.Delta.apply_relocate sess mv_a.(i) mv_b.(i)
                    in
                    Layout_eval.Delta.commit sess;
                    mr)
              in
              (ratios, Layout_eval.Delta.stats sess))
        in
        (* Full path: identical move sequence, one full streaming
           evaluation per move. *)
        let full_ratios, full_ns =
          wall (fun () ->
              let order = Array.init nf Fun.id in
              Array.init moves (fun i ->
                  if mv_swap.(i) then Anneal.apply_swap order mv_a.(i) mv_b.(i)
                  else Anneal.apply_relocate order mv_a.(i) mv_b.(i);
                  Layout_eval.miss_ratio_of_order engine order))
        in
        let delta_digest = digest_of delta_ratios in
        let full_digest = digest_of full_ratios in
        if delta_digest <> full_digest then begin
          Printf.eprintf
            "FATAL: scenario %s: delta ratios diverge from full recompute (digest %s vs %s)\n%!"
            label delta_digest full_digest;
          exit 1
        end;
        let st = delta_stats in
        let denom = float_of_int st.Layout_eval.Delta.moves in
        let dirty_pct =
          100.0
          *. float_of_int st.Layout_eval.Delta.dirty_sets
          /. (denom *. float_of_int params.C.Params.num_sets)
        in
        let replayed_pct =
          100.0
          *. float_of_int st.Layout_eval.Delta.replayed_events
          /. (denom *. float_of_int trace_len)
        in
        let speedup = float_of_int full_ns /. float_of_int delta_ns in
        Printf.printf
          "  %-12s nominal %3d%%  measured dirty %5.1f%%  replayed %5.1f%%  full %8.2f ms  \
           delta %8.2f ms  %6.2fx\n%!"
          label nominal_pct dirty_pct replayed_pct
          (float_of_int full_ns /. 1e6)
          (float_of_int delta_ns /. 1e6)
          speedup;
        (label, nominal_pct, dirty_pct, replayed_pct, full_ns, delta_ns, speedup, delta_digest, st)
      )
      scenarios
  in
  (* (b) the anneal wall: `Full vs `Delta at max_span 2, same seed, same
     stream — results must be byte-identical before walls are compared. *)
  let steps = if quick then 100 else 400 in
  let anneal_seed = 11 in
  let run mode =
    wall (fun () ->
        Anneal.search ~seed:anneal_seed ~steps ~max_span:2 ~mode ~params program trace)
  in
  let full_r, full_ns = run `Full in
  let delta_r, delta_ns = run `Delta in
  let identical =
    full_r.Anneal.order = delta_r.Anneal.order
    && Int64.bits_of_float full_r.Anneal.miss_ratio
       = Int64.bits_of_float delta_r.Anneal.miss_ratio
  in
  if not identical then begin
    Printf.eprintf "FATAL: anneal results differ across evaluation modes — delta path is wrong\n%!";
    exit 1
  end;
  let anneal_speedup = float_of_int full_ns /. float_of_int delta_ns in
  Printf.printf
    "  anneal %d steps (max_span 2): full %.2f ms -> delta %.2f ms (%.2fx), miss %.4f (identical)\n%!"
    steps
    (float_of_int full_ns /. 1e6)
    (float_of_int delta_ns /. 1e6)
    anneal_speedup full_r.Anneal.miss_ratio;
  List.iter
    (fun (label, _, _, _, full_ns, delta_ns, _, _, _) ->
      if full_ns <= 0 || delta_ns <= 0 then begin
        Printf.eprintf "FATAL: non-positive timing in scenario %s\n%!" label;
        exit 1
      end)
    scenario_rows;
  if (not quick) && anneal_speedup < 3.0 then begin
    Printf.eprintf
      "FATAL: delta anneal speedup %.2fx < 3x over full recompute — the incremental path has \
       regressed\n%!"
      anneal_speedup;
    exit 1
  end;
  let manifest =
    U.Json.Obj
      [
        ("schema", U.Json.Str "colayout/bench-layout-eval-delta/v1");
        ("mode", U.Json.Str (if quick then "quick" else "full"));
        ( "params",
          U.Json.Obj
            [
              ("program", U.Json.Str (Colayout_ir.Program.name program));
              ("num_funcs", U.Json.Int nf);
              ("trace_len", U.Json.Int trace_len);
              ("cache", U.Json.Str (C.Params.to_string params));
              ("num_sets", U.Json.Int params.C.Params.num_sets);
              ("moves_per_scenario", U.Json.Int moves);
              ("anneal_steps", U.Json.Int steps);
              ("anneal_max_span", U.Json.Int 2);
            ] );
        cores_field ();
        ( "scenarios",
          U.Json.Arr
            (List.map
               (fun (label, nominal_pct, dirty_pct, replayed_pct, full_ns, delta_ns, speedup,
                     digest, st) ->
                 U.Json.Obj
                   [
                     ("label", U.Json.Str label);
                     ("nominal_dirty_pct", U.Json.Int nominal_pct);
                     ("measured_dirty_pct", U.Json.Float dirty_pct);
                     ("replayed_events_pct", U.Json.Float replayed_pct);
                     ("full_wall_ns", U.Json.Int full_ns);
                     ("delta_wall_ns", U.Json.Int delta_ns);
                     ("speedup", U.Json.Float speedup);
                     ("digest", U.Json.Str digest);
                     ("digests_equal", U.Json.Bool true);
                     ("resyncs", U.Json.Int st.Layout_eval.Delta.resyncs);
                     ("full_walks", U.Json.Int st.Layout_eval.Delta.full_walks);
                   ])
               scenario_rows) );
        ( "anneal",
          U.Json.Obj
            [
              ("steps", U.Json.Int steps);
              ("full_wall_ns", U.Json.Int full_ns);
              ("delta_wall_ns", U.Json.Int delta_ns);
              ("speedup", U.Json.Float anneal_speedup);
              ("miss_ratio", U.Json.Float delta_r.Anneal.miss_ratio);
              ("identical_results", U.Json.Bool identical);
            ] );
        runtime_field t_start;
      ]
  in
  let oc = open_out path in
  output_string oc (U.Json.to_string ~pretty:true manifest);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n\n%!" path

(* ---------------------------------------------------------- Part 0.97 *)

(* Strong/weak scaling study (BENCH_scaling.json, schema
   colayout/bench-scaling/v1): the work-stealing pool measured against the
   batch shapes the optimizer search actually produces. A pool task is a
   *group* of candidate evaluations run on a per-worker engine:

   - uniform: every task is a single candidate — the homogeneous batch a
     fixed contiguous split handles adequately;
   - skewed: a few front-loaded "giant" tasks carrying many candidates
     ahead of a tail of singletons — the heterogeneous shape of §IV's
     defensiveness/politeness sweep, which pins the heavy tasks plus a
     full share of the tail onto the first chunk under a fixed split.

   Strong scaling holds total work fixed while jobs grows, and runs each
   width under both schedulers: work-stealing (one pool task per group)
   and a reproduction of the PR-3 fixed-chunk schedule (the contiguous
   split committed up front as [jobs] meta-tasks through the same pool, so
   only the scheduling differs). Weak scaling replicates the base workload
   [jobs] times, so per-worker work is constant and efficiency is T1/Tj.
   Every pooled run is digest-compared against a jobs = 1 run of the same
   workload — stealing may move work, never change results (FATAL in every
   mode). The magnitude gates are cores-gated like every other bench:
   full mode on a host with >= 2 cores FATALs if skewed-batch throughput
   under work-stealing is not >= 1.3x the fixed-chunk baseline at
   gate_jobs = min(cores, jobs_max) (at wider jobs the workers
   oversubscribe the cores and the OS scheduler, not the pool, sets the
   makespan), or if the best uniform strong-scaling speedup falls below
   1.0; quick mode and single-core hosts only require positive walls. *)

let run_scaling_bench ~quick ~path =
  let t_start = U.Metrics.default_clock () in
  Printf.printf "== Scaling study: work-stealing vs fixed chunks, strong/weak curves ==\n%!";
  let params = layout_eval_params in
  let program = W.Gen.build layout_eval_profile in
  let nf = Colayout_ir.Program.num_funcs program in
  let max_blocks = if quick then 6_000 else 30_000 in
  let trace = Pipeline.reference_trace program (E.Interp.ref_input ~max_blocks ()) in
  let jobs_max = max 4 (U.Pool.default_jobs ()) in
  let gate_jobs = max 1 (min (cores_available ()) jobs_max) in
  let jobs_list = List.init jobs_max (fun i -> i + 1) in
  Printf.printf "   (%d functions, %d-event trace, jobs 1..%d, %s)\n%!" nf
    (T.Trace.length trace) jobs_max (C.Params.to_string params);
  (* One engine per worker slot, shared by every run below: a task indexes
     scratch by worker id only, so ratios cannot depend on scheduling. *)
  let engines = Array.init jobs_max (fun _ -> Layout_eval.create ~params program trace) in
  let prng = U.Prng.create ~seed:42 in
  let order () =
    let a = Array.init nf Fun.id in
    U.Prng.shuffle prng a;
    a
  in
  let small_tasks = if quick then 12 else 48 in
  let giants = 2 in
  let giant_evals = if quick then 6 else 24 in
  let mk_uniform n = Array.init n (fun _ -> [| order () |]) in
  let mk_skewed ~giants ~small =
    Array.append
      (Array.init giants (fun _ -> Array.init giant_evals (fun _ -> order ())))
      (Array.init small (fun _ -> [| order () |]))
  in
  let total_evals groups = Array.fold_left (fun acc g -> acc + Array.length g) 0 groups in
  let wall f =
    let t0 = U.Metrics.default_clock () in
    let r = f () in
    (r, Int64.to_int (Int64.sub (U.Metrics.default_clock ()) t0))
  in
  let digest_of ratios =
    Digest.to_hex
      (Digest.string
         (String.concat ";" (Array.to_list (Array.map (Printf.sprintf "%.17g") ratios))))
  in
  let eval_group ~worker g =
    Array.map (fun o -> Layout_eval.miss_ratio_of_order engines.(worker) o) g
  in
  let flatten parts = Array.concat (Array.to_list parts) in
  (* Work-stealing run: one pool task per group; the pool's initial
     contiguous split is rebalanced by idle workers stealing. *)
  let run_steal ~jobs groups =
    let metrics = U.Metrics.create () in
    let ratios, ns =
      U.Pool.with_pool ~jobs ~metrics (fun pool ->
          wall (fun () ->
              flatten
                (U.Pool.map_array_w pool (fun ~worker g -> eval_group ~worker g) groups)))
    in
    let steals = Option.value ~default:0 (U.Metrics.find_counter metrics "pool.steals") in
    (ratios, ns, steals)
  in
  (* Fixed-chunk baseline: the PR-3 schedule reproduced on today's pool.
     The contiguous split is committed up front as [jobs] meta-tasks, so
     no task boundary exists inside a chunk for stealing to exploit. *)
  let run_fixed ~jobs groups =
    let n = Array.length groups in
    let chunk = (n + jobs - 1) / jobs in
    let chunks = Array.init jobs (fun i -> (min n (i * chunk), min n ((i + 1) * chunk))) in
    U.Pool.with_pool ~jobs (fun pool ->
        wall (fun () ->
            flatten
              (U.Pool.map_array_w pool
                 (fun ~worker (lo, hi) ->
                   flatten
                     (Array.init (hi - lo) (fun k -> eval_group ~worker groups.(lo + k))))
                 chunks)))
  in
  let check_positive label ns =
    if ns <= 0 then begin
      Printf.eprintf "FATAL: non-positive wall for %s\n%!" label;
      exit 1
    end
  in
  (* --- strong scaling: fixed total work, growing jobs --------------- *)
  let strong_shape label groups =
    let total = total_evals groups in
    let seq_ratios, _, _ = run_steal ~jobs:1 groups in
    let reference = digest_of seq_ratios in
    let rows =
      List.map
        (fun jobs ->
          let s_ratios, s_ns, steals = run_steal ~jobs groups in
          let f_ratios, f_ns = run_fixed ~jobs groups in
          if digest_of s_ratios <> reference || digest_of f_ratios <> reference then begin
            Printf.eprintf
              "FATAL: %s results differ from jobs=1 at jobs=%d — determinism broken\n%!"
              label jobs;
            exit 1
          end;
          check_positive (Printf.sprintf "strong %s steal jobs=%d" label jobs) s_ns;
          check_positive (Printf.sprintf "strong %s fixed jobs=%d" label jobs) f_ns;
          Printf.printf
            "  strong %-8s jobs=%d  steal %8.2f ms  fixed %8.2f ms  (%4d steals, digest ok)\n%!"
            label jobs
            (float_of_int s_ns /. 1e6)
            (float_of_int f_ns /. 1e6)
            steals;
          (jobs, s_ns, f_ns, steals))
        jobs_list
    in
    (label, total, reference, rows)
  in
  let strong_uniform = strong_shape "uniform" (mk_uniform (giants * giant_evals + small_tasks)) in
  let strong_skewed = strong_shape "skewed" (mk_skewed ~giants ~small:small_tasks) in
  let row_at rows jobs = List.find (fun (j, _, _, _) -> j = jobs) rows in
  let base_of rows = let _, s, _, _ = row_at rows 1 in float_of_int s in
  let ratio_of rows jobs =
    let _, s, f, _ = row_at rows jobs in
    float_of_int f /. float_of_int s
  in
  let best_uniform_speedup =
    let _, _, _, rows = strong_uniform in
    let base = base_of rows in
    List.fold_left (fun acc (_, s, _, _) -> Float.max acc (base /. float_of_int s)) 0.0 rows
  in
  let skew_ratio_gate = let _, _, _, rows = strong_skewed in ratio_of rows gate_jobs in
  let skew_ratio_max = let _, _, _, rows = strong_skewed in ratio_of rows jobs_max in
  Printf.printf
    "  skewed steal-vs-fixed: %.2fx at jobs=%d (gate), %.2fx at jobs=%d (max)\n%!"
    skew_ratio_gate gate_jobs skew_ratio_max jobs_max;
  (* --- weak scaling: workload grows with jobs ----------------------- *)
  let weak_shape label mk_base =
    let rows =
      List.map
        (fun jobs ->
          let groups = flatten (Array.init jobs (fun _ -> mk_base ())) in
          let s_ratios, s_ns, _ = run_steal ~jobs groups in
          let ok =
            jobs = 1
            ||
            let seq_ratios, _, _ = run_steal ~jobs:1 groups in
            digest_of seq_ratios = digest_of s_ratios
          in
          if not ok then begin
            Printf.eprintf
              "FATAL: weak %s results differ from jobs=1 at jobs=%d — determinism broken\n%!"
              label jobs;
            exit 1
          end;
          check_positive (Printf.sprintf "weak %s jobs=%d" label jobs) s_ns;
          (jobs, total_evals groups, s_ns))
        jobs_list
    in
    let base = match rows with (1, _, ns) :: _ -> float_of_int ns | _ -> assert false in
    List.map
      (fun (jobs, evals, ns) ->
        let eff = base /. float_of_int ns in
        Printf.printf "  weak   %-8s jobs=%d  %6d evals  %8.2f ms  (efficiency %.2f)\n%!"
          label jobs evals
          (float_of_int ns /. 1e6)
          eff;
        (jobs, evals, ns, eff))
      rows
    |> fun r -> (label, r)
  in
  let weak_uniform = weak_shape "uniform" (fun () -> mk_uniform (if quick then 8 else 24)) in
  let weak_skewed =
    weak_shape "skewed" (fun () -> mk_skewed ~giants:1 ~small:(if quick then 6 else 12))
  in
  (* --- cores-gated magnitude assertions ----------------------------- *)
  if (not quick) && cores_available () >= 2 then begin
    if skew_ratio_gate < 1.3 then begin
      Printf.eprintf
        "FATAL: skewed-batch work-stealing throughput %.2fx < 1.3x the fixed-chunk \
         baseline at jobs=%d — the scheduler upgrade has regressed\n%!"
        skew_ratio_gate gate_jobs;
      exit 1
    end;
    if best_uniform_speedup < 1.0 then begin
      Printf.eprintf
        "FATAL: best uniform strong-scaling speedup %.2fx < 1.0x — the pool is slower \
         than sequential on a multi-core host\n%!"
        best_uniform_speedup;
      exit 1
    end
  end;
  let strong_json (label, total, digest, rows) =
    let base = base_of rows in
    U.Json.Obj
      [
        ("shape", U.Json.Str label);
        ("total_evals", U.Json.Int total);
        ("digest", U.Json.Str digest);
        ( "runs",
          U.Json.Arr
            (List.map
               (fun (jobs, s_ns, f_ns, steals) ->
                 U.Json.Obj
                   [
                     ("jobs", U.Json.Int jobs);
                     ("steal_wall_ns", U.Json.Int s_ns);
                     ("fixed_wall_ns", U.Json.Int f_ns);
                     ("steals", U.Json.Int steals);
                     ("steal_speedup", U.Json.Float (base /. float_of_int s_ns));
                     ("fixed_speedup", U.Json.Float (base /. float_of_int f_ns));
                     ( "steal_vs_fixed",
                       U.Json.Float (float_of_int f_ns /. float_of_int s_ns) );
                   ])
               rows) );
      ]
  in
  let weak_json (label, rows) =
    U.Json.Obj
      [
        ("shape", U.Json.Str label);
        ( "runs",
          U.Json.Arr
            (List.map
               (fun (jobs, evals, ns, eff) ->
                 U.Json.Obj
                   [
                     ("jobs", U.Json.Int jobs);
                     ("evals", U.Json.Int evals);
                     ("wall_ns", U.Json.Int ns);
                     ("efficiency", U.Json.Float eff);
                     ("digest_ok", U.Json.Bool true);
                   ])
               rows) );
      ]
  in
  let manifest =
    U.Json.Obj
      [
        ("schema", U.Json.Str "colayout/bench-scaling/v1");
        ("mode", U.Json.Str (if quick then "quick" else "full"));
        cores_field ();
        ("jobs_max", U.Json.Int jobs_max);
        ("gate_jobs", U.Json.Int gate_jobs);
        ( "params",
          U.Json.Obj
            [
              ("program", U.Json.Str (Colayout_ir.Program.name program));
              ("num_funcs", U.Json.Int nf);
              ("trace_len", U.Json.Int (T.Trace.length trace));
              ("cache", U.Json.Str (C.Params.to_string params));
              ("small_tasks", U.Json.Int small_tasks);
              ("giants", U.Json.Int giants);
              ("giant_evals", U.Json.Int giant_evals);
            ] );
        ("strong", U.Json.Arr [ strong_json strong_uniform; strong_json strong_skewed ]);
        ("weak", U.Json.Arr [ weak_json weak_uniform; weak_json weak_skewed ]);
        ("identical_results", U.Json.Bool true);
        ("skewed_steal_vs_fixed_at_gate_jobs", U.Json.Float skew_ratio_gate);
        ("skewed_steal_vs_fixed_at_max_jobs", U.Json.Float skew_ratio_max);
        ("best_uniform_strong_speedup", U.Json.Float best_uniform_speedup);
        runtime_field t_start;
      ]
  in
  let oc = open_out path in
  output_string oc (U.Json.to_string ~pretty:true manifest);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n\n%!" path

(* -------------------------- streaming profile-ingest service bench *)

(* Throughput study for the `repro serve` ingest layer and its exactness
   contract. One stream of synthetic users (per-user seed/fuel from each
   user's own Prng stream, Serve's input distribution) is pre-generated
   once; every (shards x jobs) grid cell then ingests the identical
   stream through [Ingest] and must reproduce the batch-kernel digests
   on the concatenation bit-for-bit — a mismatch anywhere is FATAL in
   every mode. A bounded section re-runs under tight per-shard caps plus
   decay and asserts the approximation is deterministic across jobs
   counts and repeats, that the caps hold at flush boundaries, and that
   eviction/decay actually fired. One end-to-end [Serve.run] (generation
   + ingest + epoch re-optimization) rounds out the manifest with
   service-level throughput and latency percentiles. *)
let run_serve_bench ~quick ~path =
  let t_start = U.Metrics.default_clock () in
  Printf.printf "== Streaming ingest service: sharded online vs batch kernels ==\n\n%!";
  let program_name = "429.mcf" in
  let users = if quick then 10 else 96 in
  let max_fuel = if quick then 1_500 else 6_000 in
  let seed = 1 in
  let trg_window = 64 and affinity_w = 16 in
  let program = W.Spec.build program_name in
  let num_symbols = Colayout_ir.Program.num_blocks program in
  (* Serve's per-user distribution, replicated so the grid cells can
     share one pre-generated stream. *)
  let gen u =
    let prng = U.Prng.create ~seed:(seed + ((u + 1) * 0x9E3779B1)) in
    let input_seed = U.Prng.int prng 1_000_000_000 in
    let fuel = (max_fuel / 2) + U.Prng.int prng ((max_fuel / 2) + 1) in
    (E.Interp.run program (E.Interp.test_input ~seed:input_seed ~max_blocks:fuel ()))
      .E.Interp.bb_trace
  in
  let traces = Array.init users gen in
  let total_events = Array.fold_left (fun a t -> a + T.Trace.length t) 0 traces in
  let batch_trg, batch_aff =
    Ingest.batch_digests_parts ~trg_window ~affinity_w (Array.to_list traces)
  in
  let clock = U.Metrics.default_clock in
  let wall f =
    let t0 = clock () in
    let r = f () in
    (r, Int64.to_int (Int64.sub (clock ()) t0))
  in
  let per_sec count ns =
    if ns <= 0 then 0.0 else float_of_int count *. 1e9 /. float_of_int ns
  in
  (* --- exact grid: shards x jobs, all digest-checked ---------------- *)
  let grid_shards = [ 1; 2; 4 ] and grid_jobs = [ 1; 2; 4 ] in
  let cell ~shards ~jobs =
    U.Pool.with_pool ~jobs (fun pool ->
        let cfg = Ingest.config ~num_symbols ~shards ~trg_window ~affinity_w () in
        let ing = Ingest.create ~pool cfg in
        let (), ingest_ns = wall (fun () -> Array.iter (Ingest.ingest_trace ing) traces) in
        let c, merge_ns = wall (fun () -> Ingest.finalize ing) in
        let trg_d, aff_d = Ingest.consensus_digests c in
        let st = Ingest.stats ing in
        if trg_d <> batch_trg || aff_d <> batch_aff then begin
          Printf.eprintf
            "FATAL: online digests diverge from the batch kernels at shards=%d jobs=%d\n%!"
            shards jobs;
          exit 1
        end;
        if ingest_ns <= 0 then begin
          Printf.eprintf "FATAL: non-positive ingest wall at shards=%d jobs=%d\n%!" shards
            jobs;
          exit 1
        end;
        Printf.printf
          "  shards=%d jobs=%d  ingest %8.2f ms  merge %6.2f ms  %8.0f ev/s  digests ok\n%!"
          shards jobs
          (float_of_int ingest_ns /. 1e6)
          (float_of_int merge_ns /. 1e6)
          (per_sec total_events ingest_ns);
        (shards, jobs, ingest_ns, merge_ns, st))
  in
  let grid =
    List.concat_map
      (fun shards -> List.map (fun jobs -> cell ~shards ~jobs) grid_jobs)
      grid_shards
  in
  let serial_ns =
    match List.find (fun (s, j, _, _, _) -> s = 1 && j = 1) grid with
    | _, _, ns, _, _ -> ns
  in
  let best_parallel_vs_serial =
    List.fold_left
      (fun best (_, jobs, ns, _, _) ->
        if jobs > 1 then Float.max best (float_of_int serial_ns /. float_of_int ns)
        else best)
      0.0 grid
  in
  (* --- bounded-memory mode: deterministic approximation ------------- *)
  let trg_cap = 192 and wits_cap = 256 and decay_shift = 1 in
  let epoch_traces = if quick then 2 else 4 in
  let bounded_run ~jobs =
    U.Pool.with_pool ~jobs (fun pool ->
        let cfg =
          Ingest.config ~num_symbols ~shards:2 ~trg_window ~affinity_w ~trg_cap ~wits_cap
            ~decay_shift ~epoch_traces ()
        in
        let ing = Ingest.create ~pool cfg in
        Array.iter (Ingest.ingest_trace ing) traces;
        let d = Ingest.consensus_digests (Ingest.finalize ing) in
        (d, Ingest.stats ing))
  in
  let bounded_ref, bounded_stats = bounded_run ~jobs:1 in
  let bounded_rows =
    List.map
      (fun jobs ->
        let d, st = bounded_run ~jobs in
        (jobs, d, st))
      [ 1; 2 ]
  in
  let repeat_d, _ = bounded_run ~jobs:2 in
  let bounded_deterministic =
    repeat_d = bounded_ref && List.for_all (fun (_, d, _) -> d = bounded_ref) bounded_rows
  in
  let caps_respected (st : Ingest.stats) =
    st.Ingest.trg_peak_shard <= trg_cap && st.Ingest.wits_peak_shard <= wits_cap
  in
  let bounded_caps_ok = List.for_all (fun (_, _, st) -> caps_respected st) bounded_rows in
  let bounded_evicted =
    bounded_stats.Ingest.trg_evicted > 0 && bounded_stats.Ingest.wits_evicted > 0
    && bounded_stats.Ingest.decay_dropped > 0
  in
  if not bounded_deterministic then begin
    Printf.eprintf "FATAL: bounded-mode ingest is not deterministic across jobs counts\n%!";
    exit 1
  end;
  if not bounded_caps_ok then begin
    Printf.eprintf
      "FATAL: a shard table exceeded its cap at a flush boundary (trg %d/%d, wits %d/%d)\n%!"
      bounded_stats.Ingest.trg_peak_shard trg_cap bounded_stats.Ingest.wits_peak_shard
      wits_cap;
    exit 1
  end;
  if not bounded_evicted then begin
    Printf.eprintf
      "FATAL: bounded-mode pressure knobs did not fire (evicted trg=%d wits=%d decay=%d)\n%!"
      bounded_stats.Ingest.trg_evicted bounded_stats.Ingest.wits_evicted
      bounded_stats.Ingest.decay_dropped;
    exit 1
  end;
  Printf.printf
    "  bounded: caps %d/%d held, evicted trg=%d wits=%d, decay dropped %d, deterministic\n%!"
    trg_cap wits_cap bounded_stats.Ingest.trg_evicted bounded_stats.Ingest.wits_evicted
    bounded_stats.Ingest.decay_dropped;
  (* --- one end-to-end service run (generation + epochs + reopt) ----- *)
  let serve_summary =
    U.Pool.with_pool ~jobs:2 (fun pool ->
        let cfg =
          H.Serve.config ~users:(if quick then 8 else 48)
            ~seed ~fuel:max_fuel ~shards:2 ~trg_window ~affinity_w
            ~epoch_traces:(if quick then 4 else 12)
            ~reopt_steps:(if quick then 40 else 120)
            ~verify:true ~program:program_name ()
        in
        H.Serve.run ~pool cfg)
  in
  (match serve_summary.H.Serve.digests_match with
  | Some true -> ()
  | _ ->
    Printf.eprintf "FATAL: end-to-end Serve.run digests diverge from the batch kernels\n%!";
    exit 1);
  if serve_summary.H.Serve.traces_per_sec <= 0.0 then begin
    Printf.eprintf "FATAL: non-positive service throughput\n%!";
    exit 1
  end;
  Printf.printf "  serve: %.1f traces/s, %.0f events/s, trace p50/p95/p99 = %.0f/%.0f/%.0f us\n%!"
    serve_summary.H.Serve.traces_per_sec serve_summary.H.Serve.events_per_sec
    (serve_summary.H.Serve.trace_p50_ns /. 1e3)
    (serve_summary.H.Serve.trace_p95_ns /. 1e3)
    (serve_summary.H.Serve.trace_p99_ns /. 1e3);
  (* On a multicore host the best pooled grid cell must at least hold its
     own against the serial walker (the shard drains are the parallel
     part; generation is outside this timing). One core: positivity only. *)
  if (not quick) && cores_available () >= 2 && best_parallel_vs_serial < 0.8 then begin
    Printf.eprintf
      "FATAL: best pooled ingest is %.2fx serial (< 0.8x) on a %d-core host\n%!"
      best_parallel_vs_serial (cores_available ());
    exit 1
  end;
  let grid_json =
    U.Json.Arr
      (List.map
         (fun (shards, jobs, ingest_ns, merge_ns, (st : Ingest.stats)) ->
           U.Json.Obj
             [
               ("shards", U.Json.Int shards);
               ("jobs", U.Json.Int jobs);
               ("ingest_wall_ns", U.Json.Int ingest_ns);
               ("merge_ns", U.Json.Int merge_ns);
               ("events_per_sec", U.Json.Float (per_sec total_events ingest_ns));
               ("traces_per_sec", U.Json.Float (per_sec users ingest_ns));
               ( "edge_ops_per_sec",
                 U.Json.Float (per_sec (st.Ingest.trg_ops + st.Ingest.wit_ops) ingest_ns) );
               ("flushes", U.Json.Int st.Ingest.flushes);
               ("digests_match", U.Json.Bool true);
             ])
         grid)
  in
  let bounded_json =
    U.Json.Obj
      [
        ("shards", U.Json.Int 2);
        ("trg_cap", U.Json.Int trg_cap);
        ("wits_cap", U.Json.Int wits_cap);
        ("decay_shift", U.Json.Int decay_shift);
        ("epoch_traces", U.Json.Int epoch_traces);
        ("deterministic", U.Json.Bool bounded_deterministic);
        ("caps_respected", U.Json.Bool bounded_caps_ok);
        ("evictions_fired", U.Json.Bool bounded_evicted);
        ( "runs",
          U.Json.Arr
            (List.map
               (fun (jobs, (trg_d, aff_d), (st : Ingest.stats)) ->
                 U.Json.Obj
                   [
                     ("jobs", U.Json.Int jobs);
                     ("trg_digest", U.Json.Str trg_d);
                     ("affine_digest", U.Json.Str aff_d);
                     ("trg_peak_shard", U.Json.Int st.Ingest.trg_peak_shard);
                     ("wits_peak_shard", U.Json.Int st.Ingest.wits_peak_shard);
                     ("trg_evicted", U.Json.Int st.Ingest.trg_evicted);
                     ("wits_evicted", U.Json.Int st.Ingest.wits_evicted);
                     ("decay_dropped", U.Json.Int st.Ingest.decay_dropped);
                     ("dead_pruned", U.Json.Int st.Ingest.dead_pruned);
                   ])
               bounded_rows) );
      ]
  in
  let manifest =
    U.Json.Obj
      [
        ("schema", U.Json.Str "colayout/bench-serve/v1");
        ("mode", U.Json.Str (if quick then "quick" else "full"));
        cores_field ();
        ( "params",
          U.Json.Obj
            [
              ("program", U.Json.Str program_name);
              ("users", U.Json.Int users);
              ("max_fuel", U.Json.Int max_fuel);
              ("seed", U.Json.Int seed);
              ("num_symbols", U.Json.Int num_symbols);
              ("total_events", U.Json.Int total_events);
              ("trg_window", U.Json.Int trg_window);
              ("affinity_w", U.Json.Int affinity_w);
            ] );
        ( "batch",
          U.Json.Obj
            [
              ("trg_digest", U.Json.Str batch_trg);
              ("affine_digest", U.Json.Str batch_aff);
            ] );
        ("grid", grid_json);
        ("digests_identical", U.Json.Bool true);
        ("best_parallel_vs_serial", U.Json.Float best_parallel_vs_serial);
        ("bounded", bounded_json);
        ("serve", H.Serve.summary_to_json serve_summary);
        runtime_field t_start;
      ]
  in
  let oc = open_out path in
  output_string oc (U.Json.to_string ~pretty:true manifest);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n\n%!" path

(* Parallel multi-walker ingest: per-stream LRU walkers with the
   witness/occurrence merge algebra. Every grid cell's finalize digests
   must be byte-identical to the merged batch-kernel reference at any
   (walkers, shards, jobs) point — FATAL in every mode. On a >= 2-core
   host the walkers=cores row must beat the serial single-walker row by
   >= 1.5x (positivity-only on one core, per the PR 4 convention). *)
let run_ingest_par_bench ~quick ~path =
  let t_start = U.Metrics.default_clock () in
  Printf.printf "== Parallel multi-walker ingest: partitioned streams vs batch kernels ==\n\n%!";
  let program_name = "429.mcf" in
  let users = if quick then 10 else 96 in
  let max_fuel = if quick then 1_500 else 6_000 in
  let seed = 1 in
  let trg_window = 64 and affinity_w = 16 in
  let program = W.Spec.build program_name in
  let num_symbols = Colayout_ir.Program.num_blocks program in
  let gen u =
    let prng = U.Prng.create ~seed:(seed + ((u + 1) * 0x9E3779B1)) in
    let input_seed = U.Prng.int prng 1_000_000_000 in
    let fuel = (max_fuel / 2) + U.Prng.int prng ((max_fuel / 2) + 1) in
    (E.Interp.run program (E.Interp.test_input ~seed:input_seed ~max_blocks:fuel ()))
      .E.Interp.bb_trace
  in
  let traces = Array.init users gen in
  let total_events = Array.fold_left (fun a t -> a + T.Trace.length t) 0 traces in
  let batch_trg, batch_aff =
    Ingest.batch_digests_parts ~trg_window ~affinity_w (Array.to_list traces)
  in
  let cores = cores_available () in
  let with_cores base = List.sort_uniq compare (if cores > 1 then cores :: base else base) in
  let walkers_list = with_cores [ 1; 2; 4 ] in
  let shards_list = [ 1; 2 ] in
  let jobs_list = with_cores [ 1; 2; 4 ] in
  let clock = U.Metrics.default_clock in
  let wall f =
    let t0 = clock () in
    let r = f () in
    (r, Int64.to_int (Int64.sub (clock ()) t0))
  in
  let per_sec count ns =
    if ns <= 0 then 0.0 else float_of_int count *. 1e9 /. float_of_int ns
  in
  let cell ~walkers ~shards ~jobs =
    U.Pool.with_pool ~jobs (fun pool ->
        let cfg = Ingest.config ~num_symbols ~walkers ~shards ~trg_window ~affinity_w () in
        let ing = Ingest.create ~pool cfg in
        let (), ingest_ns = wall (fun () -> Array.iter (Ingest.ingest_trace ing) traces) in
        let c, merge_ns = wall (fun () -> Ingest.finalize ing) in
        let trg_d, aff_d = Ingest.consensus_digests c in
        let st = Ingest.stats ing in
        if trg_d <> batch_trg || aff_d <> batch_aff then begin
          Printf.eprintf
            "FATAL: multi-walker digests diverge from the batch kernels at walkers=%d \
             shards=%d jobs=%d\n%!"
            walkers shards jobs;
          exit 1
        end;
        if ingest_ns <= 0 || merge_ns <= 0 then begin
          Printf.eprintf "FATAL: non-positive wall at walkers=%d shards=%d jobs=%d\n%!"
            walkers shards jobs;
          exit 1
        end;
        Printf.printf
          "  walkers=%d shards=%d jobs=%d  ingest %8.2f ms  merge %6.2f ms  %8.0f ev/s  \
           digests ok\n%!"
          walkers shards jobs
          (float_of_int ingest_ns /. 1e6)
          (float_of_int merge_ns /. 1e6)
          (per_sec total_events ingest_ns);
        (walkers, shards, jobs, ingest_ns, merge_ns, trg_d, aff_d, st))
  in
  let grid =
    List.concat_map
      (fun walkers ->
        List.concat_map
          (fun shards -> List.map (fun jobs -> cell ~walkers ~shards ~jobs) jobs_list)
          shards_list)
      walkers_list
  in
  let ingest_ns_of (_, _, _, ns, _, _, _, _) = ns in
  let serial =
    List.find (fun (wk, s, j, _, _, _, _, _) -> wk = 1 && s = 1 && j = 1) grid
  in
  let serial_ns = ingest_ns_of serial in
  let gate_walkers = if cores > 1 then cores else 1 in
  let gate_jobs = if cores > 1 then cores else 1 in
  let gate_cell =
    List.find
      (fun (wk, s, j, _, _, _, _, _) -> wk = gate_walkers && s = 2 && j = gate_jobs)
      grid
  in
  let gate_speedup = float_of_int serial_ns /. float_of_int (ingest_ns_of gate_cell) in
  if (not quick) && cores >= 2 && gate_speedup < 1.5 then begin
    Printf.eprintf
      "FATAL: walkers=%d ingest is %.2fx serial (< 1.5x) on a %d-core host\n%!" gate_walkers
      gate_speedup cores;
    exit 1
  end;
  Printf.printf "  gate: walkers=%d jobs=%d is %.2fx the serial walker (%d cores)\n%!"
    gate_walkers gate_jobs gate_speedup cores;
  (* --- bounded mode: per-walker-count deterministic approximation ----- *)
  let trg_cap = 192 and wits_cap = 256 and decay_shift = 1 in
  let epoch_traces = if quick then 2 else 4 in
  let bounded_run ~walkers ~jobs =
    U.Pool.with_pool ~jobs (fun pool ->
        let cfg =
          Ingest.config ~num_symbols ~walkers ~shards:2 ~trg_window ~affinity_w ~trg_cap
            ~wits_cap ~decay_shift ~epoch_traces ()
        in
        let ing = Ingest.create ~pool cfg in
        Array.iter (Ingest.ingest_trace ing) traces;
        let d = Ingest.consensus_digests (Ingest.finalize ing) in
        (d, Ingest.stats ing))
  in
  let bounded_rows =
    List.map
      (fun walkers ->
        let ref_d, ref_st = bounded_run ~walkers ~jobs:1 in
        let j2_d, _ = bounded_run ~walkers ~jobs:2 in
        let rep_d, _ = bounded_run ~walkers ~jobs:2 in
        let deterministic = j2_d = ref_d && rep_d = ref_d in
        let caps_ok =
          ref_st.Ingest.trg_peak_shard <= trg_cap && ref_st.Ingest.wits_peak_shard <= wits_cap
        in
        if not deterministic then begin
          Printf.eprintf
            "FATAL: bounded-mode ingest at walkers=%d is not deterministic across jobs\n%!"
            walkers;
          exit 1
        end;
        if not caps_ok then begin
          Printf.eprintf
            "FATAL: a walker shard table exceeded its cap at walkers=%d (trg %d/%d, wits \
             %d/%d)\n%!"
            walkers ref_st.Ingest.trg_peak_shard trg_cap ref_st.Ingest.wits_peak_shard
            wits_cap;
          exit 1
        end;
        (walkers, ref_d, ref_st))
      [ 1; 2 ]
  in
  Printf.printf "  bounded: caps %d/%d held, per-walker-count deterministic across jobs\n%!"
    trg_cap wits_cap;
  (* --- per-walker latency histograms survive the dispatch fold -------- *)
  let hist_walkers = 2 in
  let walker_hist =
    U.Pool.with_pool ~jobs:2 (fun pool ->
        let metrics = U.Metrics.create () in
        let cfg =
          Ingest.config ~num_symbols ~walkers:hist_walkers ~shards:2 ~trg_window ~affinity_w ()
        in
        let ing = Ingest.create ~pool ~metrics cfg in
        Array.iter (Ingest.ingest_trace ing) traces;
        ignore (Ingest.finalize ing);
        List.init hist_walkers (fun i ->
            let h =
              U.Metrics.histogram metrics (Printf.sprintf "ingest.walker.%d.trace_ns" i)
            in
            (i, U.Metrics.observations h, U.Metrics.percentile h 0.50)))
  in
  let hist_sum = List.fold_left (fun a (_, n, _) -> a + n) 0 walker_hist in
  if hist_sum <> users then begin
    Printf.eprintf
      "FATAL: per-walker latency histograms cover %d traces, expected %d\n%!" hist_sum users;
    exit 1
  end;
  Printf.printf "  histograms: %d per-walker trace observations folded through the pool\n%!"
    hist_sum;
  let grid_json =
    U.Json.Arr
      (List.map
         (fun (walkers, shards, jobs, ingest_ns, merge_ns, trg_d, aff_d, (st : Ingest.stats)) ->
           U.Json.Obj
             [
               ("walkers", U.Json.Int walkers);
               ("shards", U.Json.Int shards);
               ("jobs", U.Json.Int jobs);
               ("ingest_wall_ns", U.Json.Int ingest_ns);
               ("merge_ns", U.Json.Int merge_ns);
               ("events_per_sec", U.Json.Float (per_sec total_events ingest_ns));
               ("traces_per_sec", U.Json.Float (per_sec users ingest_ns));
               ( "edge_ops_per_sec",
                 U.Json.Float (per_sec (st.Ingest.trg_ops + st.Ingest.wit_ops) ingest_ns) );
               ("flushes", U.Json.Int st.Ingest.flushes);
               ("dispatches", U.Json.Int st.Ingest.dispatches);
               ("trg_digest", U.Json.Str trg_d);
               ("affine_digest", U.Json.Str aff_d);
               ("digests_match", U.Json.Bool true);
             ])
         grid)
  in
  let bounded_json =
    U.Json.Obj
      [
        ("shards", U.Json.Int 2);
        ("trg_cap", U.Json.Int trg_cap);
        ("wits_cap", U.Json.Int wits_cap);
        ("decay_shift", U.Json.Int decay_shift);
        ("epoch_traces", U.Json.Int epoch_traces);
        ("deterministic", U.Json.Bool true);
        ("caps_respected", U.Json.Bool true);
        ( "runs",
          U.Json.Arr
            (List.map
               (fun (walkers, (trg_d, aff_d), (st : Ingest.stats)) ->
                 U.Json.Obj
                   [
                     ("walkers", U.Json.Int walkers);
                     ("trg_digest", U.Json.Str trg_d);
                     ("affine_digest", U.Json.Str aff_d);
                     ("trg_peak_shard", U.Json.Int st.Ingest.trg_peak_shard);
                     ("wits_peak_shard", U.Json.Int st.Ingest.wits_peak_shard);
                     ("trg_evicted", U.Json.Int st.Ingest.trg_evicted);
                     ("wits_evicted", U.Json.Int st.Ingest.wits_evicted);
                     ("decay_dropped", U.Json.Int st.Ingest.decay_dropped);
                     ("dead_pruned", U.Json.Int st.Ingest.dead_pruned);
                   ])
               bounded_rows) );
      ]
  in
  let manifest =
    U.Json.Obj
      [
        ("schema", U.Json.Str "colayout/bench-ingest-par/v1");
        ("mode", U.Json.Str (if quick then "quick" else "full"));
        cores_field ();
        ( "params",
          U.Json.Obj
            [
              ("program", U.Json.Str program_name);
              ("users", U.Json.Int users);
              ("max_fuel", U.Json.Int max_fuel);
              ("seed", U.Json.Int seed);
              ("num_symbols", U.Json.Int num_symbols);
              ("total_events", U.Json.Int total_events);
              ("trg_window", U.Json.Int trg_window);
              ("affinity_w", U.Json.Int affinity_w);
              ("walkers_list", U.Json.Arr (List.map (fun i -> U.Json.Int i) walkers_list));
              ("shards_list", U.Json.Arr (List.map (fun i -> U.Json.Int i) shards_list));
              ("jobs_list", U.Json.Arr (List.map (fun i -> U.Json.Int i) jobs_list));
            ] );
        ( "batch",
          U.Json.Obj
            [
              ("trg_digest", U.Json.Str batch_trg);
              ("affine_digest", U.Json.Str batch_aff);
            ] );
        ("grid", grid_json);
        ("digests_identical", U.Json.Bool true);
        ("serial_ingest_ns", U.Json.Int serial_ns);
        ( "gate",
          U.Json.Obj
            [
              ("walkers", U.Json.Int gate_walkers);
              ("shards", U.Json.Int 2);
              ("jobs", U.Json.Int gate_jobs);
              ("speedup_vs_serial", U.Json.Float gate_speedup);
            ] );
        ("bounded", bounded_json);
        ( "walker_hist",
          U.Json.Obj
            [
              ("walkers", U.Json.Int hist_walkers);
              ("jobs", U.Json.Int 2);
              ("total_observations", U.Json.Int hist_sum);
              ("traces", U.Json.Int users);
              ( "per_walker",
                U.Json.Arr
                  (List.map
                     (fun (i, n, p50) ->
                       U.Json.Obj
                         [
                           ("walker", U.Json.Int i);
                           ("observations", U.Json.Int n);
                           ("trace_p50_ns", U.Json.Float p50);
                         ])
                     walker_hist) );
            ] );
        runtime_field t_start;
      ]
  in
  let oc = open_out path in
  output_string oc (U.Json.to_string ~pretty:true manifest);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n\n%!" path

(* The interference observatory end to end. Each co-run cell replays a
   (self layout, peer) pair through the profiled shared cache; the
   owner-tagged sink attributes every eviction to (evictor, victim owner)
   and every non-first miss to (misser, last evictor), from which the
   paper's co-run scores fall out exactly. Three hard properties are
   fatal in every mode:
   - conservation: the matrices partition the Cache_stats totals
     (Profile.interference_json raises on any mismatch);
   - transparency: a sinkless replay of the same cell yields bit-identical
     totals — attaching the observatory cannot perturb the experiment;
   - jobs invariance: the serialized cells are byte-identical when the
     context fans out over a 2-domain pool.
   The headline gate then requires the optimized self layout to beat the
   original on BOTH defensiveness and politeness in at least two cells.
   Alongside the manifest, every cell is recorded through an Obs ring
   with a live stream sink, producing the colayout/obs/v1 JSONL artifact
   the stream checker validates. *)
let run_obs_bench ~quick ~path =
  let t_start = U.Metrics.default_clock () in
  Printf.printf "== Interference observatory: politeness/defensiveness attribution ==\n\n%!";
  let cells =
    [ ("445.gobmk", "403.gcc"); ("403.gcc", "429.mcf"); ("429.mcf", "445.gobmk") ]
  in
  let opt_kind = Optimizer.Bb_affinity in
  let scale = if quick then H.Ctx.Fast else H.Ctx.Full in
  (* One cell at one self layout: profiled co-run + transparency check
     against the unprofiled twin; returns the conservation-checked JSON
     plus the two scores of the self thread. *)
  let measure ctx (self_name, peer_name) kind =
    let self = (self_name, kind) and peer = (peer_name, Optimizer.Original) in
    let stats, sink = H.Ctx.profiled_corun ctx ~hw:false ~self ~peer in
    let bare = H.Ctx.corun_stats ctx ~hw:false ~self ~peer in
    let same what a b =
      if a <> b then begin
        Printf.eprintf
          "FATAL: sink perturbs %s of %s|%s/%s (%d profiled, %d bare)\n%!" what
          self_name peer_name (Optimizer.kind_name kind) a b;
        exit 1
      end
    in
    same "accesses" (C.Cache_stats.accesses stats) (C.Cache_stats.accesses bare);
    same "misses" (C.Cache_stats.misses stats) (C.Cache_stats.misses bare);
    same "evictions" (C.Cache_stats.evictions stats) (C.Cache_stats.evictions bare);
    for th = 0 to 1 do
      same "thread accesses"
        (C.Cache_stats.thread_accesses stats th)
        (C.Cache_stats.thread_accesses bare th);
      same "thread misses"
        (C.Cache_stats.thread_misses stats th)
        (C.Cache_stats.thread_misses bare th)
    done;
    let label =
      Printf.sprintf "%s(%s)|%s" self_name (Optimizer.kind_name kind) peer_name
    in
    let interference =
      try C.Profile.interference_json ~label ~sink ~stats
      with Invalid_argument msg ->
        Printf.eprintf "FATAL: conservation violated in cell %s: %s\n%!" label msg;
        exit 1
    in
    ( interference,
      C.Cache_stats.thread_miss_ratio stats 0,
      C.Profile_sink.defensiveness sink ~thread:0,
      C.Profile_sink.politeness sink ~thread:0 )
  in
  let run_cells ctx =
    List.map
      (fun cell ->
        let base = measure ctx cell Optimizer.Original in
        let opt = measure ctx cell opt_kind in
        (cell, base, opt))
      cells
  in
  let rows = run_cells (H.Ctx.create ~scale ()) in
  (* Jobs invariance: the same cells through a pooled context must
     serialize identically, byte for byte. *)
  let serialize rows =
    List.map
      (fun (_, (bj, _, _, _), (oj, _, _, _)) ->
        U.Json.to_string bj ^ "\n" ^ U.Json.to_string oj)
      rows
  in
  let rows_j2 =
    U.Pool.with_pool ~jobs:2 (fun pool -> run_cells (H.Ctx.create ~scale ~pool ()))
  in
  List.iteri
    (fun i (a, b) ->
      if a <> b then begin
        let (s, p), _, _ = List.nth rows i in
        Printf.eprintf "FATAL: cell %s|%s attribution differs between jobs=1 and jobs=2\n%!"
          s p;
        exit 1
      end)
    (List.combine (serialize rows) (serialize rows_j2));
  (* Obs ring + live stream: one snapshot per cell, streamed to the JSONL
     artifact next to the manifest as it is recorded. *)
  let stream_path = Filename.remove_extension path ^ ".jsonl" in
  let obs = U.Obs.create () in
  let oc_stream = open_out stream_path in
  U.Obs.set_stream obs (Some (fun line -> output_string oc_stream (line ^ "\n")));
  let cell_rows =
    List.map
      (fun ((self_name, peer_name), (bj, bmr, bdef, bpol), (oj, omr, odef, opol)) ->
        let improved = odef > bdef && opol > bpol in
        U.Obs.record obs ~label:"cell"
          ([
             ("self", U.Json.Str self_name);
             ("peer", U.Json.Str peer_name);
             ("baseline", bj);
             ("optimized", oj);
             ("improved_both", U.Json.Bool improved);
           ]
          @ U.Obs.gc_fields ());
        Printf.printf
          "  %-10s | %-10s  def %.4f -> %.4f  pol %.4f -> %.4f  miss %.4f -> %.4f%s\n%!"
          self_name peer_name bdef odef bpol opol bmr omr
          (if improved then "  (improved both)" else "");
        U.Json.Obj
          [
            ("self", U.Json.Str self_name);
            ("peer", U.Json.Str peer_name);
            ("optimizer", U.Json.Str (Optimizer.kind_name opt_kind));
            ( "baseline",
              U.Json.Obj
                [
                  ("miss_ratio", U.Json.Float bmr);
                  ("defensiveness", U.Json.Float bdef);
                  ("politeness", U.Json.Float bpol);
                  ("interference", bj);
                ] );
            ( "optimized",
              U.Json.Obj
                [
                  ("miss_ratio", U.Json.Float omr);
                  ("defensiveness", U.Json.Float odef);
                  ("politeness", U.Json.Float opol);
                  ("interference", oj);
                ] );
            ("improved_both", U.Json.Bool improved);
          ])
      rows
  in
  U.Obs.set_stream obs None;
  close_out oc_stream;
  let improved_cells =
    List.length
      (List.filter
         (fun (_, (_, _, bdef, bpol), (_, _, odef, opol)) -> odef > bdef && opol > bpol)
         rows)
  in
  if improved_cells < 2 then begin
    Printf.eprintf
      "FATAL: optimized layout improved both scores in only %d/%d co-run cells (need >= 2)\n%!"
      improved_cells (List.length rows);
    exit 1
  end;
  Printf.printf "  %d/%d cells improved on both scores; conservation and transparency held\n%!"
    improved_cells (List.length rows);
  let manifest =
    U.Json.Obj
      [
        ("schema", U.Json.Str "colayout/bench-obs/v1");
        ("mode", U.Json.Str (if quick then "quick" else "full"));
        cores_field ();
        ( "params",
          U.Json.Obj
            [
              ("scale", U.Json.Str (if quick then "fast" else "full"));
              ("optimizer", U.Json.Str (Optimizer.kind_name opt_kind));
              ("hw", U.Json.Bool false);
              ("threads", U.Json.Int 2);
            ] );
        ("cells", U.Json.Arr cell_rows);
        ("cells_improved_both", U.Json.Int improved_cells);
        ("sink_transparent", U.Json.Bool true);
        ("jobs_invariant", U.Json.Bool true);
        ("obs_stream", U.Json.Str (Filename.basename stream_path));
        ("obs_recorded", U.Json.Int (U.Obs.recorded obs));
        ("obs_dropped", U.Json.Int (U.Obs.dropped obs));
        runtime_field t_start;
      ]
  in
  let oc = open_out path in
  output_string oc (U.Json.to_string ~pretty:true manifest);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n  wrote %s\n\n%!" path stream_path

(* ------------------------------------------------------------- Part 1 *)

let tests () =
  let _program, test_run, analysis, ref_trace, original, optimized = Lazy.force shared in
  let bb_trace = analysis.Optimizer.bb in
  let fn_trimmed = analysis.Optimizer.fn in
  let smt_cfg = E.Smt.default_config () in
  let tiny_trace = T.Trace.of_list ~num_symbols:5 [ 0; 3; 1; 3; 1; 2; 4; 0; 3 ] in
  ignore test_run;
  [
    (* Figure 1 / Figures 5-6 core: the w-window affinity analyses. *)
    Test.make ~name:"fig1/affinity-hierarchy (paper w-range)"
      (Staged.stage (fun () ->
           ignore
             (Affinity_hierarchy.build ~ws:Optimizer.default_config.Optimizer.ws bb_trace)));
    Test.make ~name:"fig1/affinity-single-window w=8"
      (Staged.stage (fun () -> ignore (Affinity.affine_pairs bb_trace ~w:8)));
    Test.make ~name:"fig1/affinity-exact-oracle (9-event trace)"
      (Staged.stage (fun () -> ignore (Affinity.affine_pairs_naive tiny_trace ~w:3)));
    (* Figure 2 / Table II TRG path. *)
    Test.make ~name:"fig2/trg-build (fn trace)"
      (Staged.stage (fun () -> ignore (Trg.build ~window:256 fn_trimmed)));
    Test.make ~name:"fig2/trg-reduce (fn trace, 256 slots)"
      (let trg = Trg.build ~window:256 fn_trimmed in
       Staged.stage (fun () -> ignore (Trg_reduce.reduce trg ~slots:256)));
    (* Table I / Figure 4: trace-driven cache simulation. *)
    Test.make ~name:"fig4/icache-solo-replay"
      (Staged.stage (fun () ->
           ignore (Pipeline.miss_ratio_solo ~params ~layout:original ref_trace)));
    Test.make ~name:"fig4/icache-shared-replay"
      (Staged.stage (fun () ->
           ignore
             (Pipeline.miss_ratio_corun ~params ~self:(original, ref_trace)
                ~peer:(optimized, ref_trace) ())));
    (* Figures 5-7: the SMT timing model. *)
    Test.make ~name:"fig5/smt-solo"
      (Staged.stage (fun () ->
           ignore
             (E.Smt.solo smt_cfg (Layout.to_smt_code original) (T.Trace.events ref_trace))));
    Test.make ~name:"fig6-7/smt-corun"
      (Staged.stage (fun () ->
           ignore
             (E.Smt.corun smt_cfg ~mode:E.Smt.Finish_both
                (Layout.to_smt_code original, T.Trace.events ref_trace)
                (Layout.to_smt_code optimized, T.Trace.events ref_trace))));
    (* Eq 1/2: the footprint-theory model. *)
    Test.make ~name:"eq1/footprint-curve (line trace)"
      (Staged.stage (fun () ->
           ignore (Pipeline.footprint_curve ~params ~layout:original ref_trace)));
    (* §II-F stack structures: hash+linked-list stack vs order-statistic
       red-black tree. *)
    Test.make ~name:"stack/lru-list walk"
      (Staged.stage (fun () ->
           let s = T.Lru_stack.create () in
           T.Trace.iter (fun x -> ignore (T.Lru_stack.access s x)) bb_trace));
    Test.make ~name:"stack/rb-tree distances"
      (Staged.stage (fun () -> ignore (T.Stack_dist.run bb_trace)));
    (* The transformation itself. *)
    Test.make ~name:"transform/bb-layout assignment"
      (let program, _, analysis, _, _, _ = Lazy.force shared in
       let order = Optimizer.block_order_for Optimizer.Bb_affinity program analysis in
       Staged.stage (fun () ->
           ignore (Layout.of_block_order ~function_stubs:true program order)));
  ]

let run_benchmarks () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~stabilize:false () in
  Printf.printf "== Bechamel micro-benchmarks (one per paper artifact) ==\n%!";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ ns ] ->
            if ns > 1e6 then Printf.printf "  %-48s %10.2f ms/run\n%!" name (ns /. 1e6)
            else if ns > 1e3 then Printf.printf "  %-48s %10.2f us/run\n%!" name (ns /. 1e3)
            else Printf.printf "  %-48s %10.2f ns/run\n%!" name ns
          | _ -> Printf.printf "  %-48s (no estimate)\n%!" name)
        analyzed)
    (tests ());
  print_newline ()

(* ------------------------------------------------------------- Part 2 *)

let miss_with_config config kind =
  let program, test_run, _, ref_trace, _, _ = Lazy.force shared in
  let a =
    Optimizer.analysis_of_traces ~config ~bb:test_run.E.Interp.bb_trace
      ~fn:test_run.E.Interp.fn_trace ()
  in
  let layout = Optimizer.layout_for ~config kind program a in
  C.Cache_stats.miss_ratio (Pipeline.miss_ratio_solo ~params ~layout ref_trace)

let ablations () =
  let program, test_run, analysis, ref_trace, original, _ = Lazy.force shared in
  let base_config = Optimizer.default_config in
  let t =
    U.Table.create ~title:"Ablation: affinity window range (bb-affinity on 445.gobmk)"
      ~columns:[ ("w range", U.Table.Left); ("solo miss ratio", U.Table.Right) ]
  in
  List.iter
    (fun (label, ws) ->
      let mr = miss_with_config { base_config with Optimizer.ws } Optimizer.Bb_affinity in
      U.Table.add_row t [ label; U.Table.fmt_pct (100.0 *. mr) ])
    [
      ("2..20 (paper)", base_config.Optimizer.ws);
      ("small only [2;3;4]", [ 2; 3; 4 ]);
      ("single [8] (TRG-like)", [ 8 ]);
      ("large only [16;20]", [ 16; 20 ]);
    ];
  U.Table.print t;
  let t2 =
    U.Table.create ~title:"Ablation: trace pruning threshold (§II-F, top-N hottest blocks)"
      ~columns:
        [
          ("top N", U.Table.Right);
          ("coverage", U.Table.Right);
          ("bb-affinity miss", U.Table.Right);
        ]
  in
  List.iter
    (fun top ->
      let config = { base_config with Optimizer.prune_top = top } in
      let a =
        Optimizer.analysis_of_traces ~config ~bb:test_run.E.Interp.bb_trace
          ~fn:test_run.E.Interp.fn_trace ()
      in
      let layout = Optimizer.layout_for ~config Optimizer.Bb_affinity program a in
      let mr = C.Cache_stats.miss_ratio (Pipeline.miss_ratio_solo ~params ~layout ref_trace) in
      U.Table.add_row t2
        [
          string_of_int top;
          U.Table.fmt_pct (100.0 *. a.Optimizer.prune.T.Prune.coverage);
          U.Table.fmt_pct (100.0 *. mr);
        ])
    [ 10_000; 1_000; 300; 100 ];
  U.Table.print t2;
  let t3 =
    U.Table.create
      ~title:"Ablation: TRG analysis-cache scale (Gloy & Smith recommend 2x; bb-trg)"
      ~columns:[ ("cache multiplier", U.Table.Right); ("solo miss ratio", U.Table.Right) ]
  in
  List.iter
    (fun m ->
      let mr =
        miss_with_config
          { base_config with Optimizer.cache_multiplier = m }
          Optimizer.Bb_trg
      in
      U.Table.add_row t3 [ U.Table.fmt_float ~decimals:1 m; U.Table.fmt_pct (100.0 *. mr) ])
    [ 0.5; 1.0; 2.0; 4.0 ];
  U.Table.print t3;
  (* The paper's §II-C modification vs the original Gloy-Smith scheme. *)
  let t4 =
    U.Table.create
      ~title:
        "Ablation: TRG as reordering (the paper) vs original padded TPCM placement \
         (Gloy & Smith) on 445.gobmk"
      ~columns:
        [
          ("scheme", U.Table.Left);
          ("code bytes", U.Table.Right);
          ("solo miss ratio", U.Table.Right);
        ]
  in
  let add_scheme name layout =
    let mr = C.Cache_stats.miss_ratio (Pipeline.miss_ratio_solo ~params ~layout ref_trace) in
    U.Table.add_row t4
      [ name; U.Table.fmt_int layout.Layout.total_bytes; U.Table.fmt_pct (100.0 *. mr) ]
  in
  add_scheme "original layout" original;
  add_scheme "func-trg (reorder, no gaps)" (Optimizer.layout_for Optimizer.Func_trg program analysis);
  add_scheme "padded TPCM (gaps)" (Trg_place.layout_for program analysis);
  U.Table.print t4;
  (* All comparators side by side: the paper's optimizers, the compiler
     default (intra-procedural), and the classic call-graph baseline. *)
  let t5 =
    U.Table.create
      ~title:"Comparators on 445.gobmk: the paper's optimizers vs classic baselines (solo)"
      ~columns:[ ("layout", U.Table.Left); ("solo miss ratio", U.Table.Right) ]
  in
  let call_trace =
    (E.Interp.run program (E.Interp.test_input ~max_blocks:30_000 ())).E.Interp.call_trace
  in
  let add_cmp name layout =
    let mr = C.Cache_stats.miss_ratio (Pipeline.miss_ratio_solo ~params ~layout ref_trace) in
    U.Table.add_row t5 [ name; U.Table.fmt_pct (100.0 *. mr) ]
  in
  add_cmp "original" original;
  add_cmp "intra-procedural BB (compiler default)" (Intra_reorder.layout_for program analysis);
  add_cmp "Pettis-Hansen call graph" (Pettis_hansen.layout_for program call_trace);
  add_cmp "CMG reduction (function)" (Cmg.layout_for ~granularity:`Function program analysis);
  add_cmp "CMG reduction (block)" (Cmg.layout_for ~granularity:`Block program analysis);
  add_cmp "static (profile-free)" (Static_layout.layout_for program);
  List.iter
    (fun kind -> add_cmp (Optimizer.kind_name kind) (Optimizer.layout_for kind program analysis))
    [ Optimizer.Func_affinity; Optimizer.Bb_affinity ];
  U.Table.print t5

(* ------------------------------------------------------------- Part 3 *)

let () =
  let quick = ref false in
  let kernels_only = ref false in
  let parallel_only = ref false in
  let profile_only = ref false in
  let layout_eval_only = ref false in
  let layout_eval_delta_only = ref false in
  let scaling_only = ref false in
  let serve_only = ref false in
  let ingest_par_only = ref false in
  let obs_only = ref false in
  let json = ref "BENCH_kernels.json" in
  let harness_json = ref "BENCH_harness.json" in
  let parallel_json = ref "BENCH_parallel.json" in
  let profile_json = ref "BENCH_profile.json" in
  let layout_eval_json = ref "BENCH_layout_eval.json" in
  let layout_eval_delta_json = ref "BENCH_layout_eval_delta.json" in
  let scaling_json = ref "BENCH_scaling.json" in
  let serve_json = ref "BENCH_serve.json" in
  let ingest_par_json = ref "BENCH_ingest_par.json" in
  let obs_json = ref "BENCH_obs.json" in
  let jobs = ref 1 in
  Arg.parse
    [
      ("--quick", Arg.Set quick, " small kernel inputs, kernels + harness + parallel + profile manifests (CI smoke run)");
      ("--kernels-only", Arg.Set kernels_only, " full-size kernel benchmarks only");
      ( "--parallel-only",
        Arg.Set parallel_only,
        " full-matrix parallel-scaling benchmark only (regenerates BENCH_parallel.json)" );
      ( "--profile-only",
        Arg.Set profile_only,
        " cache-profile manifest only (regenerates BENCH_profile.json)" );
      ( "--layout-eval-only",
        Arg.Set layout_eval_only,
        " layout-evaluation engine benchmark only (regenerates BENCH_layout_eval.json)" );
      ( "--layout-eval-delta-only",
        Arg.Set layout_eval_delta_only,
        " delta-evaluation benchmark only (regenerates BENCH_layout_eval_delta.json)" );
      ( "--scaling",
        Arg.Set scaling_only,
        " strong/weak scaling study only (regenerates BENCH_scaling.json)" );
      ( "--serve",
        Arg.Set serve_only,
        " streaming-ingest service benchmark only (regenerates BENCH_serve.json)" );
      ( "--ingest-par-only",
        Arg.Set ingest_par_only,
        " multi-walker ingest benchmark only (regenerates BENCH_ingest_par.json)" );
      ( "--obs",
        Arg.Set obs_only,
        " interference-observatory benchmark only (regenerates BENCH_obs.json + .jsonl)" );
      ("--json", Arg.Set_string json, "FILE path for the kernel-benchmark JSON output");
      ( "--harness-json",
        Arg.Set_string harness_json,
        "FILE path for the harness stage-timing manifest" );
      ( "--parallel-json",
        Arg.Set_string parallel_json,
        "FILE path for the parallel-scaling manifest" );
      ( "--profile-json",
        Arg.Set_string profile_json,
        "FILE path for the cache-profile manifest" );
      ( "--layout-eval-json",
        Arg.Set_string layout_eval_json,
        "FILE path for the layout-evaluation engine manifest" );
      ( "--layout-eval-delta-json",
        Arg.Set_string layout_eval_delta_json,
        "FILE path for the delta-evaluation manifest" );
      ( "--scaling-json",
        Arg.Set_string scaling_json,
        "FILE path for the strong/weak scaling manifest" );
      ( "--serve-json",
        Arg.Set_string serve_json,
        "FILE path for the streaming-ingest service manifest" );
      ( "--ingest-par-json",
        Arg.Set_string ingest_par_json,
        "FILE path for the multi-walker ingest manifest" );
      ( "--obs-json",
        Arg.Set_string obs_json,
        "FILE path for the interference-observatory manifest (stream goes beside it)" );
      ( "--jobs",
        Arg.Set_int jobs,
        "N worker domains for the full experiment suite (0 = machine width)" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench/main.exe [--quick] [--kernels-only] [--parallel-only] [--profile-only] [--layout-eval-only] [--layout-eval-delta-only] [--scaling] [--serve] [--ingest-par-only] [--obs] [--jobs N] [--json FILE] [--harness-json FILE] [--parallel-json FILE]";
  H.Report.setup (if !quick then H.Report.Quiet else H.Report.Normal);
  if !parallel_only then begin
    H.Report.setup H.Report.Quiet;
    run_parallel_bench ~quick:!quick ~path:!parallel_json;
    exit 0
  end;
  if !profile_only then begin
    H.Report.setup H.Report.Quiet;
    run_profile_manifest ~quick:!quick ~path:!profile_json;
    exit 0
  end;
  if !layout_eval_only then begin
    H.Report.setup H.Report.Quiet;
    run_layout_eval_bench ~quick:!quick ~path:!layout_eval_json;
    exit 0
  end;
  if !layout_eval_delta_only then begin
    H.Report.setup H.Report.Quiet;
    run_layout_eval_delta_bench ~quick:!quick ~path:!layout_eval_delta_json;
    exit 0
  end;
  if !scaling_only then begin
    H.Report.setup H.Report.Quiet;
    run_scaling_bench ~quick:!quick ~path:!scaling_json;
    exit 0
  end;
  if !serve_only then begin
    H.Report.setup H.Report.Quiet;
    run_serve_bench ~quick:!quick ~path:!serve_json;
    exit 0
  end;
  if !ingest_par_only then begin
    H.Report.setup H.Report.Quiet;
    run_ingest_par_bench ~quick:!quick ~path:!ingest_par_json;
    exit 0
  end;
  if !obs_only then begin
    H.Report.setup H.Report.Quiet;
    run_obs_bench ~quick:!quick ~path:!obs_json;
    exit 0
  end;
  run_kernels ~quick:!quick ~json_path:!json;
  if not !kernels_only then begin
    run_harness_manifest ~quick:!quick ~path:!harness_json;
    run_parallel_bench ~quick:!quick ~path:!parallel_json;
    run_profile_manifest ~quick:!quick ~path:!profile_json;
    run_layout_eval_bench ~quick:!quick ~path:!layout_eval_json;
    run_layout_eval_delta_bench ~quick:!quick ~path:!layout_eval_delta_json;
    run_scaling_bench ~quick:!quick ~path:!scaling_json;
    run_serve_bench ~quick:!quick ~path:!serve_json;
    run_ingest_par_bench ~quick:!quick ~path:!ingest_par_json;
    run_obs_bench ~quick:!quick ~path:!obs_json
  end;
  if not (!quick || !kernels_only) then begin
    run_benchmarks ();
    Printf.printf "== Ablation studies (DESIGN.md section 5) ==\n\n%!";
    ablations ();
    Printf.printf "== Full experiment suite: every table and figure of the paper ==\n\n%!";
    let jobs = if !jobs = 0 then U.Pool.default_jobs () else max 1 !jobs in
    U.Pool.with_pool ~jobs (fun pool ->
        let ctx = H.Ctx.create ~scale:H.Ctx.Full ~pool () in
        let results = H.Registry.run_by_ids ctx H.Registry.ids in
        List.iter (fun (_, tables) -> List.iter U.Table.print tables) results)
  end
