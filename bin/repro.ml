(* Command-line driver for the reproduction experiments.

   `repro list` shows the experiment registry; `repro run all` regenerates
   every table and figure of the paper. *)

open Cmdliner
module H = Colayout_harness
module U = Colayout_util
module Table = Colayout_util.Table

let scale_conv =
  let parse = function
    | "fast" -> Ok H.Ctx.Fast
    | "full" -> Ok H.Ctx.Full
    | s -> Error (`Msg (Printf.sprintf "unknown scale %S (fast|full)" s))
  in
  let print ppf s =
    Format.pp_print_string ppf (match s with H.Ctx.Fast -> "fast" | H.Ctx.Full -> "full")
  in
  Arg.conv (parse, print)

let verbosity_conv =
  let parse s =
    match H.Report.verbosity_of_string s with
    | Some v -> Ok v
    | None -> Error (`Msg (Printf.sprintf "unknown verbosity %S (quiet|normal|debug)" s))
  in
  let print ppf v = Format.pp_print_string ppf (H.Report.verbosity_to_string v) in
  Arg.conv (parse, print)

let verbosity_arg =
  Arg.(
    value
    & opt verbosity_conv H.Report.Normal
    & info [ "verbosity" ] ~docv:"LEVEL" ~doc:"Stderr chatter: quiet, normal or debug")

(* Write [contents] to [path], creating parent directories as needed. *)
let write_file path contents =
  U.Fsutil.mkdir_p (Filename.dirname path);
  let oc = open_out path in
  output_string oc contents;
  output_char oc '\n';
  close_out oc

let list_cmd =
  let doc = "List the available experiments." in
  let run () =
    List.iter
      (fun (e : H.Registry.experiment) ->
        Printf.printf "%-8s %-16s %s\n" e.id e.paper_ref e.summary)
      H.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let write_csv dir id tables =
  U.Fsutil.mkdir_p dir;
  List.iteri
    (fun i t ->
      let path = Filename.concat dir (Printf.sprintf "%s_%d.csv" id i) in
      let oc = open_out path in
      output_string oc (Table.to_csv t);
      output_char oc '\n';
      close_out oc)
    tables

let run_cmd =
  let doc = "Run experiments (ids or 'all') and print their tables." in
  let ids =
    Arg.(value & pos_all string [ "all" ] & info [] ~docv:"EXPERIMENT" ~doc:"Experiment ids")
  in
  let scale =
    Arg.(
      value
      & opt scale_conv H.Ctx.Full
      & info [ "scale" ] ~docv:"SCALE" ~doc:"Simulation scale: fast or full")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"DIR" ~doc:"Also write each table as CSV into $(docv)")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"Write a JSON metrics snapshot (memo hit/miss, interp and cache counters)")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event JSON of the run's spans (loadable by \
             chrome://tracing / Perfetto)")
  in
  let jobs =
    Arg.(
      value
      & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains for the parallel experiment fan-out. 1 (the default) runs \
             sequentially on the calling domain; 0 picks the machine width \
             (recommended_domain_count - 1). Tables are byte-identical at any $(docv).")
  in
  let run ids scale csv metrics_out trace_out jobs verbosity =
    H.Report.setup verbosity;
    let requested =
      if List.mem "all" ids then H.Registry.ids else ids
    in
    let jobs =
      if jobs = 0 then U.Pool.default_jobs ()
      else if jobs < 0 then (
        Printf.eprintf "repro run: --jobs must be >= 0\n";
        exit 1)
      else jobs
    in
    let metrics = U.Metrics.create () in
    U.Pool.with_pool ~jobs ~metrics (fun pool ->
        let ctx = H.Ctx.create ~scale ~metrics ~pool () in
        let results = H.Registry.run_by_ids ctx requested in
        List.iter
          (fun (id, tables) ->
            List.iter Table.print tables;
            Option.iter (fun dir -> write_csv dir id tables) csv)
          results;
        Option.iter
          (fun path ->
            write_file path
              (U.Json.to_string ~pretty:true (U.Metrics.to_json (H.Ctx.metrics ctx))))
          metrics_out;
        Option.iter
          (fun path ->
            write_file path
              (U.Json.to_string ~pretty:true (U.Span.to_chrome_json (H.Ctx.spans ctx))))
          trace_out)
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ ids $ scale $ csv $ metrics_out $ trace_out $ jobs $ verbosity_arg)

module W = Colayout_workloads
module Core = Colayout
module E = Colayout_exec

let prog_arg =
  let doc = "Analog program name (see `repro programs`)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)

let build_program name =
  try W.Spec.build name
  with Not_found ->
    Printf.eprintf "unknown program %S; run `repro programs` for the list\n" name;
    exit 1

let programs_cmd =
  let doc = "List the 29 SPEC CPU2006 analog programs and their shapes." in
  let run () =
    let t =
      Table.create ~title:"SPEC CPU2006 analog programs"
        ~columns:
          [
            ("program", Table.Left);
            ("style", Table.Left);
            ("functions", Table.Right);
            ("blocks", Table.Right);
            ("static bytes", Table.Right);
            ("hot bytes (est)", Table.Right);
            ("fetch rate", Table.Right);
          ]
    in
    List.iter
      (fun name ->
        let profile = W.Spec.profile name in
        let p = W.Spec.build name in
        let style =
          match profile.W.Gen.style with
          | W.Gen.Phased -> Printf.sprintf "phased x%d" profile.W.Gen.phases
          | W.Gen.Dispatch { table; _ } -> Printf.sprintf "dispatch/%d" table
        in
        Table.add_row t
          [
            name;
            style;
            string_of_int (Colayout_ir.Program.num_funcs p);
            string_of_int (Colayout_ir.Program.num_blocks p);
            Table.fmt_int (Colayout_ir.Program.total_code_bytes p);
            Table.fmt_int (W.Gen.hot_code_bytes profile);
            Printf.sprintf "%.2f" profile.W.Gen.fetch_rate;
          ])
      W.Spec.names;
    Table.print t
  in
  Cmd.v (Cmd.info "programs" ~doc) Term.(const run $ const ())

let kind_arg =
  let doc = "Optimizer: original, func-affinity, bb-affinity, func-trg, bb-trg." in
  Arg.(
    value
    & pos 1 string "bb-affinity"
    & info [] ~docv:"OPTIMIZER" ~doc)

let layout_cmd =
  let doc = "Compute a layout for a program and summarize it." in
  let limit =
    Arg.(value & opt int 24 & info [ "limit" ] ~docv:"N" ~doc:"Blocks of the order to print")
  in
  let run name kind_name limit =
    let kind =
      match Core.Optimizer.kind_of_name kind_name with
      | Some k -> k
      | None ->
        Printf.eprintf "unknown optimizer %S\n" kind_name;
        exit 1
    in
    let program = build_program name in
    let analysis = Core.Optimizer.analyze program (E.Interp.test_input ()) in
    let layout = Core.Optimizer.layout_for kind program analysis in
    Printf.printf "%s under %s: %s bytes, %d fixup jumps\n" name kind_name
      (Table.fmt_int layout.Core.Layout.total_bytes)
      layout.Core.Layout.added_jumps;
    Printf.printf "first %d blocks of the order:\n" limit;
    Array.iteri
      (fun i bid ->
        if i < limit then
          let b = Colayout_ir.Program.block program bid in
          Printf.printf "  %6d  %-28s %4dB  f%d\n" layout.Core.Layout.addr.(bid)
            b.Colayout_ir.Program.name b.Colayout_ir.Program.size_bytes
            b.Colayout_ir.Program.fn)
      layout.Core.Layout.order
  in
  Cmd.v (Cmd.info "layout" ~doc) Term.(const run $ prog_arg $ kind_arg $ limit)

let trace_cmd =
  let doc = "Instrument a program and save its traces and mapping files (the §II-F artifacts)." in
  let out =
    Arg.(value & opt string "." & info [ "out" ] ~docv:"DIR" ~doc:"Output directory")
  in
  let fuel =
    Arg.(value & opt int 200_000 & info [ "fuel" ] ~docv:"N" ~doc:"Block-execution budget")
  in
  let run name out fuel =
    let program = build_program name in
    let r = E.Interp.run program (E.Interp.test_input ~max_blocks:fuel ()) in
    U.Fsutil.mkdir_p out;
    let short = W.Spec.short_name name in
    let bb_path = Filename.concat out (short ^ ".bb.trc") in
    let fn_path = Filename.concat out (short ^ ".fn.trc") in
    let map_path = Filename.concat out (short ^ ".map") in
    Colayout_trace.Trace_io.save ~path:bb_path r.E.Interp.bb_trace;
    Colayout_trace.Trace_io.save ~path:fn_path r.E.Interp.fn_trace;
    Colayout_trace.Trace_io.save_mapping ~path:map_path
      ~names:
        (Array.map
           (fun (b : Colayout_ir.Program.block) -> b.Colayout_ir.Program.name)
           (Colayout_ir.Program.blocks program));
    Printf.printf "wrote %s (%d events), %s (%d events), %s (%d symbols)\n" bb_path
      (Colayout_trace.Trace.length r.E.Interp.bb_trace)
      fn_path
      (Colayout_trace.Trace.length r.E.Interp.fn_trace)
      map_path
      (Colayout_ir.Program.num_blocks program)
  in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const run $ prog_arg $ out $ fuel)

let dump_ir_cmd =
  let doc = "Print a program's textual IR (parseable back with parse-ir)." in
  let out =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc:"Write to file")
  in
  let run name out =
    let program = build_program name in
    let text = Colayout_ir.Ir_text.print program in
    match out with
    | None -> print_string text
    | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Printf.printf "wrote %s (%d bytes)\n" path (String.length text)
  in
  Cmd.v (Cmd.info "dump-ir" ~doc) Term.(const run $ prog_arg $ out)

let parse_ir_cmd =
  let doc = "Parse a textual-IR file, validate it, and report its shape." in
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Textual IR file")
  in
  let run path =
    let ic = open_in path in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    match Colayout_ir.Ir_text.parse text with
    | p ->
      Printf.printf "%s: OK — %d functions, %d blocks, %s bytes of code\n"
        (Colayout_ir.Program.name p)
        (Colayout_ir.Program.num_funcs p)
        (Colayout_ir.Program.num_blocks p)
        (Table.fmt_int (Colayout_ir.Program.total_code_bytes p))
    | exception Colayout_ir.Ir_text.Parse_error (line, msg) ->
      Printf.eprintf "%s:%d: %s\n" path line msg;
      exit 1
  in
  Cmd.v (Cmd.info "parse-ir" ~doc) Term.(const run $ file)

let strip_cmd =
  let doc = "Residual code elimination (§II-E post-processing) report for a program." in
  let run name =
    let program = build_program name in
    let _, _, report = Core.Residual.eliminate program in
    Printf.printf
      "%s: removed %d of %d blocks (%s bytes) and %d never-called functions\n" name
      report.Core.Residual.removed_blocks
      (Colayout_ir.Program.num_blocks program)
      (Table.fmt_int report.Core.Residual.removed_bytes)
      report.Core.Residual.removed_funcs
  in
  Cmd.v (Cmd.info "strip" ~doc) Term.(const run $ prog_arg)

let profile_cmd =
  let doc =
    "Profile cache behavior under a layout: per-block miss attribution, \
     cold/capacity/conflict classification, per-set pressure and the optimizer's decision \
     trace, written as a colayout/profile/v1 JSON artifact."
  in
  let out =
    Arg.(
      value & opt string "profile.json" & info [ "out" ] ~docv:"FILE" ~doc:"Output artifact path")
  in
  let top =
    Arg.(
      value & opt int 10 & info [ "top" ] ~docv:"N" ~doc:"Conflict-missing blocks listed per layout")
  in
  let decisions_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "decisions" ] ~docv:"FILE"
          ~doc:"Also write the optimizer's full decision trace as JSONL to $(docv)")
  in
  let scale =
    Arg.(
      value
      & opt scale_conv H.Ctx.Full
      & info [ "scale" ] ~docv:"SCALE" ~doc:"Simulation scale: fast or full")
  in
  let run name kind_name out top decisions_out scale verbosity =
    H.Report.setup verbosity;
    let kind =
      match Core.Optimizer.kind_of_name kind_name with
      | Some k -> k
      | None ->
        Printf.eprintf "unknown optimizer %S\n" kind_name;
        exit 1
    in
    if not (List.mem name W.Spec.names) then begin
      Printf.eprintf "unknown program %S; run `repro programs` for the list\n" name;
      exit 1
    end;
    let ctx = H.Ctx.create ~scale () in
    let p = H.Ctx.program ctx name in
    let block_name bid =
      if bid >= 0 && bid < Colayout_ir.Program.num_blocks p then
        (Colayout_ir.Program.block p bid).Colayout_ir.Program.name
      else Printf.sprintf "b%d" bid
    in
    let base_stats, base_sink = H.Ctx.profiled_solo ctx ~hw:false name Core.Optimizer.Original in
    let layouts =
      { Colayout_cache.Profile.label = "original"; sink = base_sink; stats = base_stats }
      ::
      (if kind = Core.Optimizer.Original then []
       else begin
         let stats, sink = H.Ctx.profiled_solo ctx ~hw:false name kind in
         [ { Colayout_cache.Profile.label = kind_name; sink; stats } ]
       end)
    in
    (* Replay the layout decision for the trace: the layout itself is
       memoized above, so this second pass costs one optimizer run. *)
    let dec =
      if kind = Core.Optimizer.Original then None
      else begin
        let trace = Core.Decision_trace.create () in
        ignore
          (Core.Optimizer.layout_for ~decisions:trace ~config:(H.Ctx.opt_config ctx) kind p
             (H.Ctx.analysis ctx name));
        Some trace
      end
    in
    let decision_counts =
      match dec with None -> [] | Some d -> Core.Decision_trace.counts_by_action d
    in
    let json =
      Colayout_cache.Profile.to_json ~top ~block_name ~decisions:decision_counts ~program:name
        ~params:(H.Ctx.params ctx) ~layouts ()
    in
    write_file out (U.Json.to_string ~pretty:true json);
    Option.iter
      (fun path ->
        match dec with
        | None -> Printf.eprintf "--decisions: no decision trace for the original layout\n"
        | Some d ->
          U.Fsutil.mkdir_p (Filename.dirname path);
          let oc = open_out path in
          output_string oc (Core.Decision_trace.to_jsonl d);
          close_out oc;
          Printf.printf "wrote %s (%d decisions)\n" path (Core.Decision_trace.count d))
      decisions_out;
    let t =
      Table.create
        ~title:(Printf.sprintf "cache profile: %s" name)
        ~columns:
          [
            ("layout", Table.Left);
            ("accesses", Table.Right);
            ("misses", Table.Right);
            ("cold", Table.Right);
            ("capacity", Table.Right);
            ("conflict", Table.Right);
            ("evictions", Table.Right);
          ]
    in
    List.iter
      (fun lp ->
        let s = lp.Colayout_cache.Profile.sink in
        Table.add_row t
          [
            lp.Colayout_cache.Profile.label;
            Table.fmt_int (Colayout_cache.Profile_sink.accesses s);
            Table.fmt_int (Colayout_cache.Profile_sink.misses s);
            Table.fmt_int (Colayout_cache.Profile_sink.cold_misses s);
            Table.fmt_int (Colayout_cache.Profile_sink.capacity_misses s);
            Table.fmt_int (Colayout_cache.Profile_sink.conflict_misses s);
            Table.fmt_int (Colayout_cache.Profile_sink.evictions s);
          ])
      layouts;
    Table.print t;
    Printf.printf "wrote %s\n" out
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(const run $ prog_arg $ kind_arg $ out $ top $ decisions_out $ scale $ verbosity_arg)

let serve_cmd =
  let doc =
    "Run the streaming profile-ingest service: thousands of synthetic users drawn from a \
     workload's input distribution, folded into sharded online TRG/affinity accumulators \
     with epoch-based consensus merges and incremental layout re-optimization."
  in
  let users =
    Arg.(value & opt int 256 & info [ "users" ] ~docv:"N" ~doc:"Synthetic user traces to ingest")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Root seed") in
  let fuel =
    Arg.(
      value
      & opt int 4_000
      & info [ "fuel" ] ~docv:"N"
          ~doc:"Max block-execution budget per user (each user draws from [fuel/2, fuel])")
  in
  let shards =
    Arg.(value & opt int 2 & info [ "shards" ] ~docv:"S" ~doc:"Accumulator shards")
  in
  let walkers =
    Arg.(
      value
      & opt int 1
      & info [ "walkers" ] ~docv:"W"
          ~doc:
            "Parallel ingest walkers: completed traces partition round-robin across $(docv) \
             independent LRU walker states merged algebraically at finalize; 0 picks the \
             machine width. Exact-config digests are byte-identical at any $(docv).")
  in
  let jobs =
    Arg.(
      value
      & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains for generation, walker dispatch and sharded flushes; 0 picks the \
             machine width. Results are byte-identical at any $(docv).")
  in
  let window =
    Arg.(value & opt int 64 & info [ "window" ] ~docv:"W" ~doc:"TRG LRU window (distinct blocks)")
  in
  let w_arg =
    Arg.(value & opt int 16 & info [ "w" ] ~docv:"W" ~doc:"Affinity window footprint bound")
  in
  let epoch =
    Arg.(
      value
      & opt int 16
      & info [ "epoch" ] ~docv:"N" ~doc:"Traces per maintenance/re-optimization epoch; 0 = never")
  in
  let trg_cap =
    Arg.(
      value
      & opt int 0
      & info [ "trg-cap" ] ~docv:"N" ~doc:"Per-shard TRG edge cap (bounded memory); 0 = unbounded")
  in
  let wits_cap =
    Arg.(
      value
      & opt int 0
      & info [ "wits-cap" ] ~docv:"N" ~doc:"Per-shard witness cap (bounded memory); 0 = unbounded")
  in
  let decay =
    Arg.(
      value
      & opt int 0
      & info [ "decay" ] ~docv:"SHIFT" ~doc:"TRG weight decay per epoch (lsr $(docv)); 0 = off")
  in
  let reopt =
    Arg.(
      value
      & opt int 120
      & info [ "reopt-steps" ] ~docv:"N" ~doc:"Anneal steps per epoch re-optimization; 0 = off")
  in
  let verify =
    Arg.(
      value
      & flag
      & info [ "verify" ]
          ~doc:
            "Also run the batch kernels on the concatenated trace and check the consensus \
             digests match (exact configs only: caps and decay off)")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the colayout/serve/v1 JSON summary to $(docv)")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE" ~doc:"Write a JSON metrics snapshot")
  in
  let obs_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "obs" ] ~docv:"FILE"
          ~doc:
            "Stream per-epoch colayout/obs/v1 snapshots (interference matrix, drift, latency \
             percentiles, GC) as JSON lines to $(docv), flushed as they happen — tail it \
             live with `repro monitor $(docv) --follow`")
  in
  let from_paths =
    Arg.(
      value
      & opt_all string []
      & info [ "from" ] ~docv:"PATH"
          ~doc:
            "Ingest saved traces instead of generating synthetic users (repeatable). A file \
             is streamed once through the chunked reader; a directory is watched as a live \
             spool — new .trc/.trace files are ingested as they land until --timeout \
             elapses. PROGRAM is ignored for sizing; the symbol universe comes from the \
             first trace found.")
  in
  let timeout =
    Arg.(
      value
      & opt float 0.0
      & info [ "timeout" ] ~docv:"SECS"
          ~doc:
            "With --from DIR: watch the spool for $(docv) seconds, then exit cleanly (0 = \
             one stable sweep of the files already present).")
  in
  let poll_ms =
    Arg.(
      value
      & opt int 50
      & info [ "poll-ms" ] ~docv:"MS" ~doc:"Spool poll interval for --from DIR watching")
  in
  let serve_from paths ~walkers ~shards ~jobs ~window ~w ~epoch ~trg_cap ~wits_cap ~decay
      ~timeout ~poll_ms ~metrics_out =
    List.iter
      (fun p ->
        if not (Sys.file_exists p) then begin
          Printf.eprintf "repro serve: --from %s: no such file or directory\n" p;
          exit 1
        end)
      paths;
    let dirs, files = List.partition Sys.is_directory paths in
    let num_symbols =
      match files with
      | f :: _ ->
        Colayout_trace.Trace_io.with_reader ~path:f Colayout_trace.Trace_io.reader_num_symbols
      | [] -> (
        (* Empty spool: wait (within the watch budget) for the first trace
           file to land so the symbol universe can size the config. *)
        match H.Serve.wait_spool_symbols ~dirs ~poll_ms ~timeout_s:timeout () with
        | Some n -> n
        | None ->
          Printf.eprintf "repro serve: no readable trace file appeared in the spool within \
                          --timeout %.3fs\n"
            timeout;
          exit 1)
    in
    let metrics = U.Metrics.create () in
    U.Pool.with_pool ~jobs ~metrics (fun pool ->
        let cfg =
          Core.Ingest.config ~num_symbols ~walkers ~shards ~trg_window:window ~affinity_w:w
            ~trg_cap ~wits_cap ~decay_shift:decay ~epoch_traces:epoch ()
        in
        let ing = Core.Ingest.create ~pool ~metrics cfg in
        List.iter (fun path -> Core.Ingest.feed_file ing ~path) files;
        let report =
          if dirs = [] then None
          else
            Some (H.Serve.watch_spool ~ing ~dirs ~poll_ms ~skip:files ~timeout_s:timeout ())
        in
        let c = Core.Ingest.finalize ing in
        let td, ad = Core.Ingest.consensus_digests c in
        let s = Core.Ingest.stats ing in
        (match report with
        | Some r ->
          Printf.printf "spool: %d polls, %d files ingested, %d skipped, %d pending\n"
            r.H.Serve.sp_polls r.H.Serve.sp_ingested r.H.Serve.sp_skipped
            (List.length r.H.Serve.sp_pending)
        | None -> ());
        Printf.printf
          "ingested %d traces (%d events, %d kept) across %d walkers\n\
           trg: %d live edges  affinity: %d pairs\n\
           digests: trg=%s affine=%s\n"
          s.Core.Ingest.traces s.Core.Ingest.events s.Core.Ingest.kept_events walkers
          s.Core.Ingest.trg_live
          (Array.length c.Core.Ingest.affine)
          td ad;
        Option.iter
          (fun path ->
            write_file path (U.Json.to_string ~pretty:true (U.Metrics.to_json metrics)))
          metrics_out)
  in
  let run name users seed fuel walkers shards jobs window w epoch trg_cap wits_cap decay reopt
      verify out metrics_out obs_out from_paths timeout poll_ms verbosity =
    H.Report.setup verbosity;
    let jobs =
      if jobs = 0 then U.Pool.default_jobs ()
      else if jobs < 0 then (
        Printf.eprintf "repro serve: --jobs must be >= 0\n";
        exit 1)
      else jobs
    in
    let walkers =
      if walkers = 0 then U.Pool.default_jobs ()
      else if walkers < 0 then (
        Printf.eprintf "repro serve: --walkers must be >= 0\n";
        exit 1)
      else walkers
    in
    if from_paths <> [] then
      serve_from from_paths ~walkers ~shards ~jobs ~window ~w ~epoch ~trg_cap ~wits_cap ~decay
        ~timeout ~poll_ms ~metrics_out
    else begin
      if not (List.mem name W.Spec.names) then begin
        Printf.eprintf "unknown program %S; run `repro programs` for the list\n" name;
        exit 1
      end;
      let cfg =
        H.Serve.config ~users ~seed ~fuel ~walkers ~shards ~trg_window:window ~affinity_w:w
          ~trg_cap ~wits_cap ~decay_shift:decay ~epoch_traces:epoch ~reopt_steps:reopt ~verify
          ~program:name ()
      in
      let metrics = U.Metrics.create () in
      (* The obs stream is written line-at-a-time with an explicit flush so
         a `repro monitor --follow` on the same file sees epochs live. *)
      let obs_chan =
        Option.map
          (fun path ->
            U.Fsutil.mkdir_p (Filename.dirname path);
            open_out path)
          obs_out
      in
      let obs =
        Option.map
          (fun oc ->
            let o = U.Obs.create () in
            U.Obs.set_stream o
              (Some
                 (fun line ->
                   output_string oc line;
                   output_char oc '\n';
                   flush oc));
            o)
          obs_chan
      in
      U.Pool.with_pool ~jobs ~metrics (fun pool ->
          let summary = H.Serve.run ~pool ~metrics ?obs cfg in
          let s = summary.H.Serve.stats in
          Printf.printf
            "%s: %d users, %d walkers, %d shards, %d jobs\n\
             ingested %s events (%s kept) in %.2fs wall  |  %.0f traces/s, %s events/s, %s \
             edge-ops/s\n\
             trg: %d live (peak/shard %d)  wits: %d live (peak/shard %d)  evicted %d+%d  \
             pruned %d  decayed %d\n\
             latency: trace p50 %.0fus p95 %.0fus p99 %.0fus  merge p50 %.0fus\n"
            name users walkers shards jobs
            (Table.fmt_int s.Core.Ingest.events)
            (Table.fmt_int s.Core.Ingest.kept_events)
            (float_of_int summary.H.Serve.wall_ns /. 1e9)
            summary.H.Serve.traces_per_sec
            (Table.fmt_int (int_of_float summary.H.Serve.events_per_sec))
            (Table.fmt_int (int_of_float summary.H.Serve.edge_ops_per_sec))
            s.Core.Ingest.trg_live s.Core.Ingest.trg_peak_shard s.Core.Ingest.wits_live
            s.Core.Ingest.wits_peak_shard s.Core.Ingest.trg_evicted s.Core.Ingest.wits_evicted
            s.Core.Ingest.dead_pruned s.Core.Ingest.decay_dropped
            (summary.H.Serve.trace_p50_ns /. 1e3)
            (summary.H.Serve.trace_p95_ns /. 1e3)
            (summary.H.Serve.trace_p99_ns /. 1e3)
            (summary.H.Serve.merge_p50_ns /. 1e3);
          if summary.H.Serve.epoch_rows <> [] then begin
            let t =
              Table.create ~title:"consensus epochs"
                ~columns:
                  [
                    ("epoch", Table.Right);
                    ("at trace", Table.Right);
                    ("trg edges", Table.Right);
                    ("affine pairs", Table.Right);
                    ("miss ratio", Table.Right);
                    ("from", Table.Right);
                  ]
            in
            List.iter
              (fun (r : H.Serve.epoch_row) ->
                Table.add_row t
                  [
                    (string_of_int r.H.Serve.epoch
                    ^ if r.H.Serve.partial then "*" else "");
                    string_of_int r.H.Serve.at_trace;
                    Table.fmt_int r.H.Serve.trg_edges;
                    Table.fmt_int r.H.Serve.affine_pairs;
                    (if Float.is_nan r.H.Serve.miss_ratio then "-"
                     else Printf.sprintf "%.4f" r.H.Serve.miss_ratio);
                    (if Float.is_nan r.H.Serve.improved_from then "-"
                     else Printf.sprintf "%.4f" r.H.Serve.improved_from);
                  ])
              summary.H.Serve.epoch_rows;
            Table.print t
          end;
          (match summary.H.Serve.digests_match with
          | Some true -> Printf.printf "verify: online digests match batch kernels\n"
          | Some false ->
            Printf.eprintf
              "verify: FAILED — online digests diverge from the batch kernels (bounded-memory \
               config?)\n";
            exit 1
          | None -> ());
          Option.iter
            (fun path ->
              write_file path
                (U.Json.to_string ~pretty:true (H.Serve.summary_to_json summary));
              Printf.printf "wrote %s\n" path)
            out;
          Option.iter
            (fun path ->
              write_file path (U.Json.to_string ~pretty:true (U.Metrics.to_json metrics)))
            metrics_out);
      Option.iter close_out obs_chan;
      Option.iter (fun path -> Printf.printf "wrote %s\n" path) obs_out
    end
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ prog_arg $ users $ seed $ fuel $ walkers $ shards $ jobs $ window $ w_arg
      $ epoch $ trg_cap $ wits_cap $ decay $ reopt $ verify $ out $ metrics_out $ obs_out
      $ from_paths $ timeout $ poll_ms $ verbosity_arg)

let monitor_cmd =
  let doc =
    "Render a colayout/obs/v1 snapshot stream (from `repro serve --obs`) as a live table: \
     one row per epoch with miss ratio, drift, the interference totals and the consensus \
     layout's defensiveness/politeness scores."
  in
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Obs JSONL stream")
  in
  let follow =
    Arg.(
      value
      & flag
      & info [ "follow"; "f" ] ~doc:"Keep polling $(i,FILE) for new snapshots (tail -f style)")
  in
  let interval =
    Arg.(
      value
      & opt float 0.5
      & info [ "interval" ] ~docv:"SECONDS" ~doc:"Poll period with $(b,--follow)")
  in
  let timeout =
    Arg.(
      value
      & opt float 0.0
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Stop a $(b,--follow) after $(docv) without new snapshots; 0 waits forever")
  in
  let render_line line =
    match U.Json.parse line with
    | exception _ ->
      Printf.eprintf "monitor: skipping unparseable line\n";
      None
    | json ->
      let get k = U.Json.member k json in
      let num k = Option.bind (get k) U.Json.to_float in
      let int_of k = match Option.bind (get k) U.Json.to_int with Some i -> i | None -> 0 in
      let fmt = function Some f -> Printf.sprintf "%.4f" f | None -> "-" in
      let interference = get "interference" in
      let score field th =
        Option.bind interference (fun i ->
            match U.Json.member field i with
            | Some (U.Json.Arr l) when List.length l > th ->
              U.Json.to_float (List.nth l th)
            | _ -> None)
      in
      let partial =
        match Option.bind (get "partial") U.Json.to_bool with Some true -> "*" | _ -> ""
      in
      Some
        [
          string_of_int (int_of "epoch") ^ partial;
          string_of_int (int_of "at_trace");
          fmt (num "miss_ratio");
          fmt (num "drift");
          fmt (score "defensiveness" 0);
          fmt (score "politeness" 0);
          fmt (score "defensiveness" 1);
          fmt (score "politeness" 1);
        ]
  in
  let run path follow interval timeout =
    if not (Sys.file_exists path) then begin
      Printf.eprintf "monitor: %s does not exist\n" path;
      exit 1
    end;
    let columns =
      [
        ("epoch", Table.Right);
        ("at trace", Table.Right);
        ("miss ratio", Table.Right);
        ("drift", Table.Right);
        ("def(opt)", Table.Right);
        ("pol(opt)", Table.Right);
        ("def(base)", Table.Right);
        ("pol(base)", Table.Right);
      ]
    in
    (* Tail loop: re-open cheaply and remember the byte offset; the writer
       appends whole flushed lines, so a partial last line (no newline yet)
       is left for the next poll. *)
    let offset = ref 0 in
    let rows = ref [] in
    let read_new () =
      let ic = open_in path in
      let len = in_channel_length ic in
      let fresh = ref 0 in
      if len > !offset then begin
        seek_in ic !offset;
        let continue = ref true in
        while !continue do
          match input_line ic with
          | line ->
            if pos_in ic <= len then begin
              (match render_line line with
              | Some r ->
                rows := r :: !rows;
                incr fresh
              | None -> ());
              offset := pos_in ic
            end
            else continue := false
          | exception End_of_file -> continue := false
        done
      end;
      close_in ic;
      !fresh
    in
    let print_table () =
      let t = Table.create ~title:(Printf.sprintf "obs: %s" path) ~columns in
      List.iter (fun r -> Table.add_row t r) (List.rev !rows);
      Table.print t
    in
    let fresh = read_new () in
    ignore fresh;
    print_table ();
    if follow then begin
      let idle = ref 0.0 in
      let stop = ref false in
      while not !stop do
        Unix.sleepf (Float.max 0.05 interval);
        if read_new () > 0 then begin
          idle := 0.0;
          print_table ()
        end
        else begin
          idle := !idle +. interval;
          if timeout > 0.0 && !idle >= timeout then stop := true
        end
      done
    end
  in
  Cmd.v (Cmd.info "monitor" ~doc) Term.(const run $ file $ follow $ interval $ timeout)

let () =
  let doc = "Reproduction of 'Code Layout Optimization for Defensiveness and Politeness in Shared Cache' (ICPP 2014)" in
  let info = Cmd.info "repro" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; programs_cmd; layout_cmd; trace_cmd; strip_cmd; dump_ir_cmd; parse_ir_cmd; profile_cmd; serve_cmd; monitor_cmd ]))
